"""LinearStore: an executable end-to-end spatial store.

The paper's architecture, assembled: a :class:`LinearStore` maps grid
cells through a :class:`~repro.mapping.LocalityMapping` into 1-D keys,
indexes the keys in a B+-tree, and lays the records onto fixed-size
pages.  Range queries run the way Section 5 models them:

``"span-scan"``
    Descend the B+-tree to the query's minimum key and walk the leaf
    chain to its maximum key, "eliminating the records that lie outside
    the range query" (the paper's own description).  Cost tracks the
    Figure-6 span.
``"page-fetch"``
    Fetch exactly the pages containing qualifying records (an index
    union plan).  Cost tracks pages + seeks.

Both plans return identical result sets; the engine reports per-plan
I/O so their trade-off is measurable per mapping, and an optional LRU
buffer absorbs repeated pages across a query stream.  A built store is
immutable (tree, layout, ranks) and its buffer pool locks per access,
so one store may serve queries from many threads concurrently —
``execute_workload(parallelism=...)`` and the facade's
``query_many(parallelism=...)`` rely on exactly that.

Stores are built through the :class:`~repro.api.SpectralIndex`
facade, which constructs them lazily behind its ``range(...)`` /
``query_many(...)`` methods; the pre-facade direct constructor has
completed its deprecation cycle and now raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.ordering import LinearOrder
from repro.errors import InvalidParameterError
from repro.parallel import ensure_workers, map_in_threads
from repro.geometry.boxes import Box
from repro.geometry.grid import Grid
from repro.index.bplustree import BPlusTree
from repro.mapping.interface import LocalityMapping
from repro.obs import Timer, registry, span
from repro.storage.buffer import BufferStats, LRUBufferPool
from repro.storage.disk import DiskCostModel
from repro.storage.pages import PageLayout

# Engine-level latency, labelled by plan — separates storage-engine
# time from the facade's per-op totals in ``repro_query_seconds``.
_RANGE_SECONDS = registry().histogram(
    "repro_engine_range_seconds",
    "LinearStore.range_query latency by plan.")

PLANS = ("span-scan", "page-fetch")


@dataclass(frozen=True)
class QueryExecution:
    """Result set and I/O accounting of one range query."""

    results: np.ndarray         # qualifying flat cell indices, ascending
    plan: str
    index_node_accesses: int    # B+-tree nodes touched
    pages_fetched: int          # data pages read (before buffering)
    seeks: int                  # contiguous page runs
    buffer_hits: int
    cost: float                 # modelled disk cost of the misses


class LinearStore:
    """Grid cells stored in mapping order behind a B+-tree index.

    Parameters
    ----------
    grid:
        The domain.
    mapping:
        Any :class:`~repro.mapping.LocalityMapping`; its order defines
        both the B+-tree keys and the page layout.
    page_size:
        Records per data page.
    tree_order:
        B+-tree fanout.
    buffer_capacity:
        Pages held in the LRU pool; ``None`` disables buffering.
    cost_model:
        Seek/transfer costs for the accounting.
    service:
        Optional :class:`~repro.service.ordering.OrderingService`,
        forwarded to :meth:`~repro.mapping.LocalityMapping.order_domain`:
        cacheable spectral mappings without a service of their own route
        the order through it (so many stores over one domain share an
        eigensolve), every other mapping ignores it.

    Stores are built through :meth:`repro.api.SpectralIndex.build`
    (which owns request coalescing, caching, and provenance); the
    direct constructor completed its deprecation cycle and now raises.
    """

    def __init__(self, *args, **kwargs):
        raise TypeError(
            "direct LinearStore construction has been removed; build a "
            "repro.api.SpectralIndex and use its range()/workload() "
            "methods instead"
        )

    @classmethod
    def _from_api(cls, grid: Grid, mapping: LocalityMapping,
                  order: Optional[LinearOrder] = None,
                  page_size: int = 16, tree_order: int = 32,
                  buffer_capacity: Optional[int] = None,
                  cost_model: Optional[DiskCostModel] = None,
                  service=None) -> "LinearStore":
        """Facade constructor: no deprecation, optional precomputed order."""
        store = object.__new__(cls)
        store._setup(grid, mapping, order, page_size, tree_order,
                     buffer_capacity, cost_model, service)
        return store

    def _setup(self, grid: Grid, mapping: LocalityMapping,
               order: Optional[LinearOrder], page_size: int,
               tree_order: int, buffer_capacity: Optional[int],
               cost_model: Optional[DiskCostModel], service) -> None:
        self._grid = grid
        self._mapping = mapping
        if order is None:
            order = mapping.order_domain(grid, service=service)
        self._ranks = order.ranks
        self._layout = PageLayout(order, page_size)
        # Key = rank; value = flat cell index.
        self._tree = BPlusTree.bulk_load(
            list(range(grid.size)),
            [int(cell) for cell in order.permutation],
            order=tree_order,
        )
        self._buffer = (LRUBufferPool(buffer_capacity)
                        if buffer_capacity else None)
        self._model = cost_model or DiskCostModel()

    # ------------------------------------------------------------------
    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def mapping_name(self) -> str:
        return self._mapping.name

    @property
    def layout(self) -> PageLayout:
        return self._layout

    @property
    def tree(self) -> BPlusTree:
        return self._tree

    # ------------------------------------------------------------------
    def range_query(self, box: Box,
                    plan: str = "span-scan") -> QueryExecution:
        """Execute an axis-aligned range query under the chosen plan."""
        if plan not in PLANS:
            raise InvalidParameterError(
                f"unknown plan {plan!r}; expected one of {PLANS}"
            )
        with span("engine.range_query", plan=plan) as sp, \
                Timer() as timer:
            execution = self._range_query_impl(box, plan)
            sp.set_attribute("pages", execution.pages_fetched)
        _RANGE_SECONDS.observe(timer.seconds, plan=plan)
        return execution

    def _range_query_impl(self, box: Box, plan: str) -> QueryExecution:
        wanted = box.cell_indices(self._grid)
        wanted_set = set(int(c) for c in wanted)
        ranks = self._ranks[wanted]
        lo, hi = int(ranks.min()), int(ranks.max())

        if plan == "span-scan":
            candidates, node_accesses = self._tree.range_search(lo, hi)
            results = np.array(sorted(
                cell for cell in candidates if cell in wanted_set
            ), dtype=np.int64)
            pages = self._layout.pages_for_items(
                np.array(candidates, dtype=np.int64))
        else:  # page-fetch
            node_accesses = 0
            pages = self._layout.pages_for_items(wanted)
            results = np.sort(wanted)

        runs = len(self._layout.page_run_lengths(pages))
        hits = 0
        misses = len(pages)
        if self._buffer is not None:
            hits = self._buffer.access_many(int(p) for p in pages)
            misses = len(pages) - hits
        # Seeks only apply to pages actually read from disk; buffered
        # runs are approximated by scaling runs with the miss fraction.
        effective_runs = (runs if misses == len(pages)
                          else min(runs, misses))
        cost = self._model.cost(misses, effective_runs)
        return QueryExecution(
            results=results,
            plan=plan,
            index_node_accesses=node_accesses,
            pages_fetched=len(pages),
            seeks=runs,
            buffer_hits=hits,
            cost=cost,
        )

    def point_query(self, point: Sequence[int]) -> Tuple[bool, int]:
        """Whether a cell exists (always true on a full grid) and the
        B+-tree node accesses spent proving it."""
        cell = self._grid.index_of(point)
        value, accesses = self._tree.search(int(self._ranks[cell]))
        return value is not None, accesses

    def buffer_stats(self) -> Optional[BufferStats]:
        """The buffer pool's accounting snapshot (``None`` unbuffered).

        The pool locks each access, so the snapshot satisfies
        ``hits + misses == accesses`` exactly even while queries are
        executing on other threads.
        """
        if self._buffer is None:
            return None
        return self._buffer.stats()

    def execute_workload(self, boxes: Sequence[Box],
                         plan: str = "span-scan",
                         parallelism: Optional[int] = None
                         ) -> "WorkloadReport":
        """Run a query stream and aggregate the accounting.

        ``parallelism`` > 1 fans the queries across that many worker
        threads (the store's structures are immutable after build and
        the buffer pool locks per access, so this is safe).  Result
        sets per query are identical to the sequential run; with a
        buffer pool, *which* query absorbs a given buffer hit depends
        on interleaving, but the aggregated report stays conservation-
        exact: total buffer hits equal the pool's hit delta, and
        ``pages_fetched`` equals the pool's access delta.
        """
        boxes = list(boxes)
        with span("engine.workload", queries=len(boxes), plan=plan):
            executions = map_in_threads(
                lambda box: self.range_query(box, plan=plan), boxes,
                ensure_workers(parallelism),
                thread_name_prefix="repro-workload")
        return WorkloadReport(
            plan=plan,
            queries=len(executions),
            results=sum(len(e.results) for e in executions),
            index_node_accesses=sum(e.index_node_accesses
                                    for e in executions),
            pages_fetched=sum(e.pages_fetched for e in executions),
            seeks=sum(e.seeks for e in executions),
            buffer_hits=sum(e.buffer_hits for e in executions),
            cost=sum(e.cost for e in executions),
        )


@dataclass(frozen=True)
class WorkloadReport:
    """Aggregated accounting of a query stream."""

    plan: str
    queries: int
    results: int
    index_node_accesses: int
    pages_fetched: int
    seeks: int
    buffer_hits: int
    cost: float

"""Nearest-neighbour search through a linear order.

The similarity-search application behind Figure 5: store cells in mapping
order and answer a k-NN query by examining a contiguous *rank window*
around the query cell.  If the mapping preserves locality, the true
neighbours are inside a small window; the measurable quantity is the
*recall* of the window against the true Manhattan k-NN set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DimensionError, InvalidParameterError
from repro.geometry.grid import Grid


def true_knn(grid: Grid, query_cell: int, k: int) -> np.ndarray:
    """The ``k`` cells nearest to ``query_cell`` in Manhattan distance.

    The query cell itself is excluded; ties at the cut-off distance are
    broken by ascending flat index (stable and deterministic).
    """
    if not 1 <= k < grid.size:
        raise InvalidParameterError(
            f"k must be in [1, {grid.size - 1}], got {k}"
        )
    coords = grid.coordinates()
    query = coords[int(query_cell)]
    distances = np.abs(coords - query).sum(axis=1)
    distances[int(query_cell)] = np.iinfo(np.int64).max
    # stable argsort => ascending flat index inside each distance class
    return np.argsort(distances, kind="stable")[:k]


def window_candidates(ranks: np.ndarray, query_cell: int,
                      window: int) -> np.ndarray:
    """Cells whose rank lies within ``window`` of the query's rank.

    This is the set a 1-D index (B+-tree over mapping keys) would fetch
    with a single short scan.  The query cell is excluded.
    """
    ranks = np.asarray(ranks)
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    center = int(ranks[int(query_cell)])
    lo = center - window
    hi = center + window
    hits = np.flatnonzero((ranks >= lo) & (ranks <= hi))
    return hits[hits != int(query_cell)]


@dataclass(frozen=True)
class RecallReport:
    """Mean window recall of a mapping for k-NN queries."""

    k: int
    window: int
    query_count: int
    mean_recall: float
    min_recall: float


def knn_window_recall(grid: Grid, ranks: np.ndarray, k: int,
                      window: int,
                      query_cells: Sequence[int] | None = None,
                      seed: int = 0, sample: int = 64) -> RecallReport:
    """Recall of rank-window k-NN search against true Manhattan k-NN.

    Parameters
    ----------
    grid, ranks:
        The domain and the mapping's rank array.
    k:
        Neighbours wanted.
    window:
        Half-width of the rank window examined around each query.
    query_cells:
        Explicit query cells; defaults to a seeded uniform sample of
        ``sample`` cells.
    """
    ranks = np.asarray(ranks)
    if ranks.shape != (grid.size,):
        raise DimensionError(
            f"ranks must have shape ({grid.size},), got {ranks.shape}"
        )
    if query_cells is None:
        rng = np.random.default_rng(seed)
        count = min(sample, grid.size)
        query_cells = rng.choice(grid.size, size=count, replace=False)
    recalls = []
    for cell in query_cells:
        truth = set(int(c) for c in true_knn(grid, int(cell), k))
        found = set(int(c) for c in window_candidates(ranks, int(cell),
                                                      window))
        recalls.append(len(truth & found) / k)
    recalls_arr = np.array(recalls)
    return RecallReport(
        k=k,
        window=window,
        query_count=len(recalls_arr),
        mean_recall=float(recalls_arr.mean()),
        min_recall=float(recalls_arr.min()),
    )

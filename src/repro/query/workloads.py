"""Query workload generators.

Everything the experiment harnesses iterate over: exhaustive and sampled
box families for range queries, and cell-pair families for
nearest-neighbour style distance measurements.  All randomized generators
take an explicit seed and use an isolated generator, so workloads are
reproducible and independent of global RNG state.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import DomainError, InvalidParameterError
from repro.geometry.boxes import Box, boxes_with_extent
from repro.geometry.grid import Grid


def sliding_boxes(grid: Grid, extent: Sequence[int]) -> Iterator[Box]:
    """Every placement of an ``extent`` box (alias of the geometry helper,
    re-exported here because workloads are its natural home)."""
    return boxes_with_extent(grid, extent)


def random_boxes(grid: Grid, extent: Sequence[int], count: int,
                 seed: int = 0) -> List[Box]:
    """``count`` uniformly placed boxes of the given extent."""
    extent = tuple(int(e) for e in extent)
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    if any(e < 1 or e > s for e, s in zip(extent, grid.shape)):
        raise DomainError(
            f"extent {extent} invalid for grid shape {grid.shape}"
        )
    rng = np.random.default_rng(seed)
    boxes = []
    for _ in range(count):
        origin = tuple(
            int(rng.integers(0, s - e + 1))
            for s, e in zip(grid.shape, extent)
        )
        boxes.append(Box.from_origin_extent(origin, extent))
    return boxes


def random_cells(grid: Grid, count: int, seed: int = 0,
                 replace: bool = False) -> np.ndarray:
    """Flat indices of ``count`` random cells."""
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    if not replace and count > grid.size:
        raise InvalidParameterError(
            f"cannot draw {count} distinct cells from a grid of "
            f"{grid.size}"
        )
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(grid.size, size=count, replace=replace))


def pairs_at_manhattan_distance(grid: Grid, distance: int,
                                limit: int | None = None,
                                seed: int = 0
                                ) -> Tuple[np.ndarray, np.ndarray]:
    """Cell-index pairs at exactly the given Manhattan distance.

    Enumerates, for every cell, the partner cells reachable with a
    non-negative leading offset (each unordered pair counted once).  When
    ``limit`` is given and fewer pairs are wanted than exist, a uniform
    sample of that size is drawn with the given seed.
    """
    if not 1 <= distance <= grid.max_manhattan:
        raise InvalidParameterError(
            f"distance must be in [1, {grid.max_manhattan}], got {distance}"
        )
    offsets = _canonical_offsets_at_distance(grid.ndim, distance)
    coords = grid.coordinates()
    shape = np.array(grid.shape)
    strides = np.array(grid.strides)
    lefts = []
    rights = []
    for off in offsets:
        valid = np.ones(grid.size, dtype=bool)
        for axis, delta in enumerate(off):
            if delta > 0:
                valid &= coords[:, axis] + delta < shape[axis]
            elif delta < 0:
                valid &= coords[:, axis] + delta >= 0
        src = np.flatnonzero(valid)
        if len(src):
            lefts.append(src)
            rights.append(src + int(np.array(off) @ strides))
    if not lefts:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    left = np.concatenate(lefts)
    right = np.concatenate(rights)
    if limit is not None and len(left) > limit:
        rng = np.random.default_rng(seed)
        pick = rng.choice(len(left), size=limit, replace=False)
        pick.sort()
        left, right = left[pick], right[pick]
    return left, right


def _canonical_offsets_at_distance(ndim: int,
                                   distance: int) -> List[Tuple[int, ...]]:
    """Offsets with Manhattan norm == distance, first nonzero positive."""
    results: List[Tuple[int, ...]] = []

    def extend(prefix: Tuple[int, ...], remaining: int) -> None:
        axis = len(prefix)
        if axis == ndim:
            if remaining == 0:
                results.append(prefix)
            return
        if axis == ndim - 1:
            # Last axis takes everything that remains.
            for delta in {remaining, -remaining}:
                extend(prefix + (delta,), 0)
            return
        for magnitude in range(remaining + 1):
            deltas = (magnitude,) if magnitude == 0 else (magnitude,
                                                          -magnitude)
            for delta in deltas:
                extend(prefix + (delta,), remaining - magnitude)

    extend((), distance)
    canonical = []
    for off in results:
        first = next((c for c in off if c != 0), 0)
        if first > 0:
            canonical.append(off)
    return canonical

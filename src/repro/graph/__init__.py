"""Graph substrate: CSR graphs, grid builders, Laplacians, traversal."""

from repro.graph.adjacency import DUPLICATE_POLICIES, Graph
from repro.graph.coarsening import (
    CoarseningLevel,
    HierarchyCache,
    coarsen,
    coarsen_hierarchy,
    contract,
    heavy_edge_matching,
    matching_invocations,
)
from repro.graph.builders import (
    GridTopology,
    complete_graph,
    cycle_graph,
    grid_graph,
    grid_graph_from_topology,
    grid_graph_topology,
    induced_grid_graph,
    knn_graph,
    path_graph,
    radius_graph,
    star_graph,
)
from repro.graph.laplacian import (
    laplacian,
    laplacian_dense,
    normalized_laplacian_dense,
    quadratic_form,
    rayleigh_quotient,
)
from repro.graph.traversal import (
    bfs_order,
    component_vertex_lists,
    connected_components,
    is_connected,
)
from repro.graph.weights import (
    gaussian,
    inverse_euclidean,
    inverse_manhattan,
    unit_weight,
    weight_function,
    weight_names,
)

__all__ = [
    "CoarseningLevel",
    "DUPLICATE_POLICIES",
    "Graph",
    "GridTopology",
    "HierarchyCache",
    "bfs_order",
    "coarsen",
    "coarsen_hierarchy",
    "contract",
    "heavy_edge_matching",
    "matching_invocations",
    "complete_graph",
    "component_vertex_lists",
    "connected_components",
    "cycle_graph",
    "gaussian",
    "grid_graph",
    "grid_graph_from_topology",
    "grid_graph_topology",
    "induced_grid_graph",
    "inverse_euclidean",
    "inverse_manhattan",
    "is_connected",
    "knn_graph",
    "laplacian",
    "laplacian_dense",
    "normalized_laplacian_dense",
    "path_graph",
    "quadratic_form",
    "radius_graph",
    "rayleigh_quotient",
    "star_graph",
    "unit_weight",
    "weight_function",
    "weight_names",
]

"""Graph constructors: grid graphs, classic families, and point-cloud graphs.

The paper's Step 1 models a point set as a graph with an edge wherever two
points have Manhattan distance 1 — i.e. the *orthogonal* grid graph.
Section 4 varies the model: 8-connectivity (Figure 4) and weighted graphs
with a larger radius (the footnote's ``w = 1/manhattan`` model).  All of
those are instances of :func:`grid_graph` here.

Classic families (paths, cycles, stars, complete graphs) are provided for
tests and for demonstrating spectral ordering on non-grid inputs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import DimensionError, InvalidParameterError
from repro.geometry.grid import Grid, _normalize_connectivity
from repro.graph.adjacency import Graph
from repro.graph.weights import weight_function


# ----------------------------------------------------------------------
# Grid graphs
# ----------------------------------------------------------------------
def _canonical_offsets(ndim: int, connectivity: str,
                       radius: int) -> list[Tuple[int, ...]]:
    """Half of the neighbourhood offsets (one per undirected direction).

    An offset is *canonical* when its first nonzero component is positive;
    using only canonical offsets yields each undirected edge exactly once.
    ``"orthogonal"`` keeps offsets with Manhattan norm <= radius;
    ``"moore"`` keeps offsets with Chebyshev norm <= radius.
    """
    if radius < 1:
        raise InvalidParameterError(f"radius must be >= 1, got {radius}")
    offsets = []
    for off in itertools.product(range(-radius, radius + 1), repeat=ndim):
        if all(c == 0 for c in off):
            continue
        first_nonzero = next(c for c in off if c != 0)
        if first_nonzero < 0:
            continue
        if connectivity == "orthogonal":
            if sum(abs(c) for c in off) <= radius:
                offsets.append(off)
        else:  # moore
            if max(abs(c) for c in off) <= radius:
                offsets.append(off)
    return offsets


@dataclass(frozen=True)
class GridTopology:
    """The weight-independent part of a grid graph build.

    Building a grid graph splits naturally into a *topology* phase (which
    cells are adjacent under a connectivity/radius — the expensive masks
    and CSR sort) and a *weighting* phase (one weight per distinct
    offset).  A ``GridTopology`` captures the first phase so that many
    weight configurations over the same domain pay the build once:
    :func:`grid_graph_from_topology` turns it into a :class:`Graph` in a
    single vectorized gather.

    Attributes
    ----------
    grid, connectivity, radius:
        The domain and (normalized) graph model this topology encodes.
    indptr, indices:
        The symmetric CSR structure shared by every weighting.
    offset_ids:
        Per CSR entry, the index into ``offsets`` of the coordinate
        offset that produced it (offsets are canonicalized, so both CSR
        copies of an undirected edge share one id).
    offsets:
        The distinct canonical offsets, as coordinate tuples.
    """

    grid: Grid
    connectivity: str
    radius: int
    indptr: np.ndarray
    indices: np.ndarray
    offset_ids: np.ndarray
    offsets: Tuple[Tuple[int, ...], ...]

    @property
    def num_vertices(self) -> int:
        """Number of vertices (= grid cells)."""
        return self.grid.size


def grid_graph_topology(grid: Grid, connectivity="orthogonal",
                        radius: int = 1) -> GridTopology:
    """The weight-independent topology of :func:`grid_graph`.

    Performs the neighbourhood masks and the CSR assembly sort — all the
    work of a grid-graph build except assigning weights — and returns a
    reusable :class:`GridTopology`.  Batched services build this once per
    ``(shape, connectivity, radius)`` and stamp out one graph per weight
    model via :func:`grid_graph_from_topology`.
    """
    style = _normalize_connectivity(connectivity)
    if radius < 1:
        raise InvalidParameterError(f"radius must be >= 1, got {radius}")
    coords = grid.coordinates()
    shape = np.array(grid.shape)
    strides = np.array(grid.strides)
    offsets = _canonical_offsets(grid.ndim, style, radius)
    src_chunks = []
    dst_chunks = []
    id_chunks = []
    kept_offsets = []
    for off in offsets:
        off_arr = np.array(off)
        valid = np.ones(grid.size, dtype=bool)
        for axis, delta in enumerate(off):
            if delta > 0:
                valid &= coords[:, axis] + delta < shape[axis]
            elif delta < 0:
                valid &= coords[:, axis] + delta >= 0
        src = np.flatnonzero(valid)
        if len(src) == 0:
            continue
        off_id = len(kept_offsets)
        kept_offsets.append(off)
        src_chunks.append(src)
        dst_chunks.append(src + int(off_arr @ strides))
        id_chunks.append(np.full(len(src), off_id, dtype=np.int64))
    n = grid.size
    if not src_chunks:
        empty = np.empty(0, dtype=np.int64)
        return GridTopology(grid=grid, connectivity=style, radius=radius,
                            indptr=np.zeros(n + 1, dtype=np.int64),
                            indices=empty, offset_ids=empty, offsets=())
    # Canonical offsets produce each undirected edge exactly once with
    # src < dst (the first nonzero offset component is positive, and any
    # in-grid trailing components can subtract at most strides[axis] - 1),
    # so the generic duplicate-resolution sort in Graph.from_edges — an
    # extra np.unique over all edges — is provably unnecessary here.
    half_u = np.concatenate(src_chunks)
    half_v = np.concatenate(dst_chunks)
    half_id = np.concatenate(id_chunks)
    rows = np.concatenate([half_u, half_v])
    cols = np.concatenate([half_v, half_u])
    ids = np.concatenate([half_id, half_id])
    order = np.lexsort((cols, rows))
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.bincount(rows, minlength=n).cumsum()
    return GridTopology(grid=grid, connectivity=style, radius=radius,
                        indptr=indptr, indices=cols[order],
                        offset_ids=ids[order],
                        offsets=tuple(kept_offsets))


def grid_graph_from_topology(topology: GridTopology,
                             weight="unit") -> Graph:
    """A grid graph from a prebuilt :class:`GridTopology` plus weights.

    Evaluates the weight model once per distinct offset and gathers the
    per-edge weights in one vectorized pass — bit-identical to calling
    :func:`grid_graph` with the same parameters, at a fraction of the
    cost when the topology is reused.
    """
    wfn = weight_function(weight)
    if not len(topology.offsets):
        return Graph.empty(topology.num_vertices)
    per_offset = np.array([wfn(off) for off in topology.offsets])
    # Direct CSR construction skips Graph.from_edges, so enforce its
    # positive-weight invariant here (one check per distinct offset —
    # every eigensolver backend assumes a PSD Laplacian).
    if (per_offset <= 0).any():
        bad = int(np.argmax(per_offset <= 0))
        raise InvalidParameterError(
            f"edge weights must be positive; weight model returned "
            f"{per_offset[bad]} for offset {topology.offsets[bad]}"
        )
    return Graph(topology.num_vertices, topology.indptr, topology.indices,
                 per_offset[topology.offset_ids])


def grid_graph(grid: Grid, connectivity="orthogonal", radius: int = 1,
               weight="unit") -> Graph:
    """The neighbourhood graph of a full grid.

    Parameters
    ----------
    grid:
        The domain.
    connectivity:
        ``"orthogonal"`` (alias 4) or ``"moore"`` (alias 8); see
        :mod:`repro.geometry.grid`.
    radius:
        Neighbourhood radius.  ``radius=1`` with orthogonal connectivity is
        the paper's default model (edges at Manhattan distance exactly 1).
    weight:
        Weight model name or callable; see :mod:`repro.graph.weights`.
        The paper's footnote model is
        ``grid_graph(g, "orthogonal", radius=R, weight="inverse_manhattan")``.

    Vertices are numbered by row-major flat cell index.  Internally this
    is :func:`grid_graph_topology` + :func:`grid_graph_from_topology`;
    callers ordering the same domain under several weight models should
    build the topology once and reuse it.
    """
    wfn = weight_function(weight)  # validate the spec before building
    topology = grid_graph_topology(grid, connectivity, radius)
    return grid_graph_from_topology(topology, wfn)


def induced_grid_graph(grid: Grid, cell_indices: Sequence[int],
                       connectivity="orthogonal", radius: int = 1,
                       weight="unit") -> Tuple[Graph, np.ndarray]:
    """Grid graph restricted to a subset of cells.

    Models a *sparse* point set living on a grid: vertices are the given
    cells (relabelled 0..k-1 in ascending flat-index order) and edges join
    cells adjacent in the full grid graph.

    Returns ``(graph, cells)`` where ``cells`` is the ascending array of
    flat cell indices, aligned with the new vertex ids.
    """
    cells = np.unique(np.asarray(cell_indices, dtype=np.int64))
    if len(cells) and (cells[0] < 0 or cells[-1] >= grid.size):
        raise InvalidParameterError("cell indices out of range")
    full = grid_graph(grid, connectivity, radius, weight)
    sub, _ = full.subgraph(cells)
    return sub, cells


# ----------------------------------------------------------------------
# Classic families (used heavily by tests)
# ----------------------------------------------------------------------
def path_graph(n: int) -> Graph:
    """The path ``0 - 1 - ... - n-1``."""
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    edges = [(i, i + 1) for i in range(n - 1)]
    return Graph.from_edges(n, edges)


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise InvalidParameterError(f"a cycle needs n >= 3, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(n, edges)


def complete_graph(n: int) -> Graph:
    """The complete graph on ``n`` vertices."""
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Graph.from_edges(n, edges)


def star_graph(n: int) -> Graph:
    """A star: vertex 0 joined to vertices ``1 .. n-1``."""
    if n < 2:
        raise InvalidParameterError(f"a star needs n >= 2, got {n}")
    edges = [(0, i) for i in range(1, n)]
    return Graph.from_edges(n, edges)


# ----------------------------------------------------------------------
# Point-cloud graphs
# ----------------------------------------------------------------------
def _pairwise_distances(points: np.ndarray, metric: str) -> np.ndarray:
    diff = points[:, None, :].astype(np.int64) - points[None, :, :]
    if metric == "manhattan":
        return np.abs(diff).sum(axis=2)
    if metric == "chebyshev":
        return np.abs(diff).max(axis=2)
    if metric == "euclidean":
        return np.sqrt((diff.astype(np.float64) ** 2).sum(axis=2))
    raise InvalidParameterError(
        f"unknown metric {metric!r}; "
        "expected 'manhattan', 'chebyshev' or 'euclidean'"
    )


def knn_graph(points: np.ndarray, k: int,
              metric: str = "manhattan") -> Graph:
    """Symmetrized k-nearest-neighbour graph of a point array.

    An undirected edge joins ``u`` and ``v`` when either is among the
    other's ``k`` nearest points (ties broken by vertex id).  Weights are 1.
    """
    pts = np.asarray(points)
    if pts.ndim != 2:
        raise DimensionError(f"points must be (n, d)-shaped, got {pts.shape}")
    n = len(pts)
    if not 1 <= k < n:
        raise InvalidParameterError(
            f"k must be in [1, n-1] = [1, {n - 1}], got {k}"
        )
    dist = _pairwise_distances(pts, metric).astype(np.float64)
    np.fill_diagonal(dist, np.inf)
    # argsort is stable, so equal distances break ties by vertex id.
    nearest = np.argsort(dist, axis=1, kind="stable")[:, :k]
    src = np.repeat(np.arange(n), k)
    edges = np.stack([src, nearest.ravel()], axis=1)
    return Graph.from_edges(n, edges)


def radius_graph(points: np.ndarray, radius: float,
                 metric: str = "manhattan", weight="unit") -> Graph:
    """Graph joining every pair of points within ``radius``.

    With ``metric="manhattan"``, ``radius=1`` and a full-grid point array
    this reproduces the paper's default model; larger radii with
    ``weight="inverse_manhattan"`` reproduce the Section-4 footnote.
    """
    pts = np.asarray(points)
    if pts.ndim != 2:
        raise DimensionError(f"points must be (n, d)-shaped, got {pts.shape}")
    if radius <= 0:
        raise InvalidParameterError(f"radius must be positive, got {radius}")
    wfn = weight_function(weight)
    dist = _pairwise_distances(pts, metric)
    n = len(pts)
    iu, ju = np.triu_indices(n, k=1)
    mask = dist[iu, ju] <= radius
    iu, ju = iu[mask], ju[mask]
    offsets = pts[ju].astype(np.int64) - pts[iu]
    weights = np.array([wfn(off) for off in offsets])
    return Graph.from_edges(n, np.stack([iu, ju], axis=1), weights)

"""Graph coarsening by heavy-edge matching.

The substrate of multilevel spectral methods (Barnard & Simon's multilevel
spectral bisection, and every multilevel partitioner since): repeatedly
contract a matching of heavy edges to produce a hierarchy of smaller
graphs that preserve the original's global structure.  The Fiedler
problem is then solved exactly on the coarsest graph and the solution is
interpolated back up with local smoothing
(:mod:`repro.core.multilevel`), giving spectral orderings for graphs far
beyond dense-eigensolver reach without scipy.

All choices are deterministic: vertices are visited in ascending id
order and ties in edge weight break toward the smallest neighbour id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph


def heavy_edge_matching(graph: Graph) -> np.ndarray:
    """A maximal matching preferring heavy edges.

    Returns ``match`` with ``match[v]`` = the partner of ``v`` (possibly
    ``v`` itself when unmatched).  Deterministic: vertices are processed
    in ascending id; each picks its heaviest unmatched neighbour
    (smallest id on ties).
    """
    n = graph.num_vertices
    match = np.arange(n, dtype=np.int64)
    taken = np.zeros(n, dtype=bool)
    for v in range(n):
        if taken[v]:
            continue
        best = -1
        best_weight = 0.0
        neighbors = graph.neighbors(v)
        weights = graph.neighbor_weights(v)
        for u, w in zip(neighbors, weights):
            if taken[u] or u == v:
                continue
            if w > best_weight or (w == best_weight and
                                   (best == -1 or u < best)):
                best = int(u)
                best_weight = float(w)
        if best >= 0:
            match[v] = best
            match[best] = v
            taken[v] = True
            taken[best] = True
    return match


def coarsen(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """Contract a heavy-edge matching.

    Returns ``(coarse, fine_to_coarse)``: each matched pair becomes one
    coarse vertex; parallel edges created by the contraction have their
    weights summed (so the coarse Laplacian is the Galerkin restriction
    of the fine one under piecewise-constant interpolation).  Edges
    internal to a contracted pair vanish.
    """
    n = graph.num_vertices
    match = heavy_edge_matching(graph)
    fine_to_coarse = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if fine_to_coarse[v] >= 0:
            continue
        fine_to_coarse[v] = next_id
        partner = int(match[v])
        if partner != v:
            fine_to_coarse[partner] = next_id
        next_id += 1
    u, v, w = graph.edge_arrays()
    cu = fine_to_coarse[u]
    cv = fine_to_coarse[v]
    keep = cu != cv
    edges = np.stack([cu[keep], cv[keep]], axis=1)
    coarse = Graph.from_edges(next_id, edges, w[keep],
                              duplicate_policy="sum")
    return coarse, fine_to_coarse


@dataclass(frozen=True)
class CoarseningLevel:
    """One level of the hierarchy: the coarse graph and the projection."""

    graph: Graph
    fine_to_coarse: np.ndarray


def coarsen_hierarchy(graph: Graph, min_size: int = 64,
                      max_levels: int = 20) -> List[CoarseningLevel]:
    """Coarsen until the graph has at most ``min_size`` vertices.

    Returns the levels coarsest-last; an empty list when the input is
    already small enough.  Stops early if a round fails to shrink the
    graph by at least 10% (fully unmatched graphs cannot coarsen).
    """
    if min_size < 2:
        raise InvalidParameterError(
            f"min_size must be >= 2, got {min_size}"
        )
    if max_levels < 1:
        raise InvalidParameterError(
            f"max_levels must be >= 1, got {max_levels}"
        )
    levels: List[CoarseningLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.num_vertices <= min_size:
            break
        coarse, projection = coarsen(current)
        if coarse.num_vertices > 0.9 * current.num_vertices:
            break
        levels.append(CoarseningLevel(graph=coarse,
                                      fine_to_coarse=projection))
        current = coarse
    return levels

"""Graph coarsening by heavy-edge matching.

The substrate of multilevel spectral methods (Barnard & Simon's multilevel
spectral bisection, and every multilevel partitioner since): repeatedly
contract a matching of heavy edges to produce a hierarchy of smaller
graphs that preserve the original's global structure.  The Fiedler
problem is then solved exactly on the coarsest graph and the solution is
interpolated back up with local smoothing
(:mod:`repro.core.multilevel`), giving spectral orderings for graphs far
beyond dense-eigensolver reach without scipy.

All choices are deterministic: vertices are visited in ascending id
order and ties in edge weight break toward the smallest neighbour id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.caching import LRUCache
from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph


#: Above this many vertices :func:`heavy_edge_matching` switches from the
#: sequential greedy sweep to the vectorized dominant-edge rounds.  Both
#: are deterministic; the sweep is kept for small graphs because its
#: vertex-by-vertex semantics are documented (and pinned by tests), while
#: the dominant-edge variant turns the biggest multilevel-coarsening cost
#: from a Python loop over every vertex into a few array passes per round.
DOMINANT_EDGE_CUTOFF = 4096

# Process-wide count of heavy-edge matchings computed.  Matching is the
# irreducible cost a hierarchy cache exists to avoid, so tests and
# services assert on the delta of this counter to prove reuse actually
# happened (mirroring the eigensolver counter in repro.linalg.backends).
_MATCHING_INVOCATIONS = 0


def matching_invocations() -> int:
    """How many heavy-edge matchings this process has computed so far."""
    return _MATCHING_INVOCATIONS


def _dominant_edge_matching(graph: Graph, max_rounds: int = 200
                            ) -> np.ndarray:
    """Heavy-edge matching by vectorized dominant-edge rounds.

    Every edge gets a unique priority — weight first, then a
    deterministic pseudo-random hash so that ties scatter instead of
    aligning along the vertex numbering (on a unit-weight grid an
    id-based tie rule makes every vertex prefer the same direction and
    the rounds stall on a slowly advancing frontier).  Each round
    simultaneously matches every edge that holds the highest priority at
    *both* endpoints.  The result equals processing all edges
    sequentially in decreasing priority order — a greedy heavy-edge
    matching — and is maximal: while any free adjacent pair remains, the
    highest-priority such edge is locally dominant and gets matched.

    Adversarial priority layouts (e.g. a path with strictly monotone
    weights) match only one edge per round; if the round cap trips
    before maximality, a sequential sweep finishes the remaining free
    vertices, so the cap bounds the *vectorized* phase, never the
    quality of the matching.
    """
    n = graph.num_vertices
    indptr, indices, weights = graph.csr_arrays()
    starts = indptr[:-1]
    nonempty = np.diff(indptr) > 0
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    # Unique per-undirected-edge priority rank, shared by both CSR copies
    # of the edge: sort canonical edge keys once, then rank by
    # (weight, hash, key).
    lo = np.minimum(rows, indices)
    hi = np.maximum(rows, indices)
    entry_key = lo * n + hi
    canonical = np.unique(entry_key)
    edge_of_entry = np.searchsorted(canonical, entry_key)
    edge_weight = np.empty(len(canonical))
    edge_weight[edge_of_entry] = weights
    scatter = np.sin(0.5 + 0.7310231 * np.arange(len(canonical))
                     + 0.1 * np.cos(1.7 * np.arange(len(canonical))))
    rank = np.empty(len(canonical), dtype=np.int64)
    rank[np.lexsort((scatter, edge_weight))] = np.arange(len(canonical))
    entry_rank = rank[edge_of_entry]

    match = np.arange(n, dtype=np.int64)
    free = np.ones(n, dtype=bool)
    for _ in range(max_rounds):
        valid = free[rows] & free[indices]
        if not valid.any():
            break
        masked = np.where(valid, entry_rank, -1)
        best = np.full(n, -1, dtype=np.int64)
        best[nonempty] = np.maximum.reduceat(masked, starts[nonempty])
        dominant = valid & (masked == best[rows]) & (masked == best[indices])
        left = rows[dominant & (rows < indices)]
        if len(left) == 0:
            break
        right = indices[dominant & (rows < indices)]
        match[left] = right
        match[right] = left
        free[left] = False
        free[right] = False
    # Maximality cleanup: the loop above only exits early when no free
    # adjacent pair remains, so this sweep does work solely when the
    # round cap tripped — and then only over the leftover free vertices.
    leftover = np.flatnonzero(free)
    if len(leftover) and (free[rows] & free[indices]).any():
        for v in leftover:
            if not free[v]:
                continue
            row = slice(indptr[v], indptr[v + 1])
            nbrs = indices[row]
            open_mask = free[nbrs]
            if not open_mask.any():
                continue
            candidates = nbrs[open_mask]
            best = int(candidates[np.argmax(entry_rank[row][open_mask])])
            match[v] = best
            match[best] = v
            free[v] = False
            free[best] = False
    return match


def heavy_edge_matching(graph: Graph) -> np.ndarray:
    """A maximal matching preferring heavy edges.

    Returns ``match`` with ``match[v]`` = the partner of ``v`` (possibly
    ``v`` itself when unmatched).  Deterministic: below
    :data:`DOMINANT_EDGE_CUTOFF` vertices each vertex, in ascending id
    order, picks its heaviest unmatched neighbour (smallest id on ties);
    larger graphs use the vectorized dominant-edge rounds of
    :func:`_dominant_edge_matching`, which apply the same heavy-edge
    preference simultaneously instead of sequentially.
    """
    global _MATCHING_INVOCATIONS
    _MATCHING_INVOCATIONS += 1
    n = graph.num_vertices
    if n > DOMINANT_EDGE_CUTOFF:
        return _dominant_edge_matching(graph)
    indptr, indices, weights = graph.csr_arrays()
    match = np.arange(n, dtype=np.int64)
    taken = np.zeros(n, dtype=bool)
    # The greedy sweep is inherently sequential (each pick constrains the
    # next), but the per-vertex choice is vectorized: neighbour rows are
    # contiguous CSR slices, and argmax on an ascending-id row returns
    # the first (= smallest-id) maximum, matching the tie rule.
    for v in range(n):
        if taken[v]:
            continue
        row = slice(indptr[v], indptr[v + 1])
        nbrs = indices[row]
        free = ~taken[nbrs]
        if not free.any():
            continue
        candidates = nbrs[free]
        best = int(candidates[np.argmax(weights[row][free])])
        match[v] = best
        match[best] = v
        taken[v] = True
        taken[best] = True
    return match


def contract(graph: Graph, fine_to_coarse: np.ndarray,
             num_coarse: int | None = None) -> Graph:
    """Contract a graph along a fine-to-coarse vertex projection.

    Edges whose endpoints land on the same coarse vertex vanish; parallel
    edges have their weights summed, so the coarse Laplacian is the
    Galerkin restriction of the fine one under piecewise-constant
    interpolation.  This is the weight-dependent half of :func:`coarsen`;
    a cached projection lets callers re-contract a known topology under
    new edge weights without recomputing the matching.
    """
    fine_to_coarse = np.asarray(fine_to_coarse, dtype=np.int64)
    if fine_to_coarse.shape != (graph.num_vertices,):
        raise InvalidParameterError(
            f"fine_to_coarse must have shape ({graph.num_vertices},), "
            f"got {fine_to_coarse.shape}"
        )
    if num_coarse is None:
        num_coarse = int(fine_to_coarse.max()) + 1 \
            if len(fine_to_coarse) else 0
    u, v, w = graph.edge_arrays()
    cu = fine_to_coarse[u]
    cv = fine_to_coarse[v]
    keep = cu != cv
    edges = np.stack([cu[keep], cv[keep]], axis=1)
    return Graph.from_edges(num_coarse, edges, w[keep],
                            duplicate_policy="sum")


def coarsen(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """Contract a heavy-edge matching.

    Returns ``(coarse, fine_to_coarse)``: each matched pair becomes one
    coarse vertex; see :func:`contract` for the contraction semantics.
    """
    n = graph.num_vertices
    match = heavy_edge_matching(graph)
    # Coarse ids are assigned in ascending order of a pair's smallest
    # endpoint — exactly the order a sequential sweep would produce.
    representative = np.minimum(np.arange(n, dtype=np.int64), match)
    _, fine_to_coarse = np.unique(representative, return_inverse=True)
    fine_to_coarse = fine_to_coarse.astype(np.int64)
    return contract(graph, fine_to_coarse), fine_to_coarse


@dataclass(frozen=True)
class CoarseningLevel:
    """One level of the hierarchy: the coarse graph and the projection."""

    graph: Graph
    fine_to_coarse: np.ndarray


def coarsen_hierarchy(graph: Graph, min_size: int = 64,
                      max_levels: int = 20) -> List[CoarseningLevel]:
    """Coarsen until the graph has at most ``min_size`` vertices.

    Returns the levels coarsest-last; an empty list when the input is
    already small enough.  Stops early if a round fails to shrink the
    graph by at least 10% (fully unmatched graphs cannot coarsen).
    """
    if min_size < 2:
        raise InvalidParameterError(
            f"min_size must be >= 2, got {min_size}"
        )
    if max_levels < 1:
        raise InvalidParameterError(
            f"max_levels must be >= 1, got {max_levels}"
        )
    levels: List[CoarseningLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.num_vertices <= min_size:
            break
        coarse, projection = coarsen(current)
        if coarse.num_vertices > 0.9 * current.num_vertices:
            break
        levels.append(CoarseningLevel(graph=coarse,
                                      fine_to_coarse=projection))
        current = coarse
    return levels


class HierarchyCache:
    """A cache of coarsening hierarchies keyed by graph *topology*.

    The matching/prolongation chain of a hierarchy depends only on the
    graph's structure plus edge weights, and in practice the structure
    dominates: re-ordering the same grid under a different ``weight=``
    configuration rebuilds an (almost) identical chain from scratch.
    This cache computes the chain **canonically** — the matchings run on
    the *unit-weighted copy* of the structure — and stores the per-level
    ``fine_to_coarse`` projections keyed by
    :meth:`~repro.graph.adjacency.Graph.structure_fingerprint`.  Every
    call (hit or miss) then rebuilds the coarse graphs by
    :func:`contract` — a few vectorized passes — with the *actual* edge
    weights, so the expensive matchings run once per topology and only
    the contraction and the smoothing downstream see the weights.

    Canonical matching is what makes the cache safe to share: the chain
    served for a graph is a pure function of its structure, never of
    which weighting happened to be requested first, so results are
    deterministic and history-independent (a persistent order store
    keyed by graph content can trust them).  The price is that, for
    non-uniformly-weighted graphs, the chain may differ from what
    weight-aware matching (:func:`coarsen_hierarchy`) would build; the
    chain stays a valid Galerkin hierarchy either way, and the
    multilevel solver's quality gate judges the resulting eigenpairs on
    their actual residuals.  Entries are evicted least-recently-used
    beyond ``max_entries``.
    """

    def __init__(self, max_entries: int = 32):
        # The LRU locks internally (lock=True): a service running
        # single-flight solves on *different* keys may enter
        # concurrently; projections themselves are immutable once
        # stored.  Concurrent misses on one structure may duplicate a
        # matching (harmless: both chains are identical by determinism)
        # rather than serialize the whole coarsening.
        self._projections: "LRUCache[Tuple, Tuple[np.ndarray, ...]]" = \
            LRUCache(max_entries, lock=True)

    @property
    def hits(self) -> int:
        """Structure-fingerprint hits (matchings reused)."""
        return self._projections.counters()[0]

    @property
    def misses(self) -> int:
        """Structure-fingerprint misses (matchings computed)."""
        return self._projections.counters()[1]

    def __len__(self) -> int:
        return len(self._projections)

    def clear(self) -> None:
        """Drop every cached hierarchy (counters are kept)."""
        self._projections.clear()

    def hierarchy(self, graph: Graph, min_size: int = 64,
                  max_levels: int = 20) -> List[CoarseningLevel]:
        """Like :func:`coarsen_hierarchy`, with canonical cached matchings.

        On a structure-fingerprint miss the matching chain is computed
        on the unit-weighted copy of ``graph``'s structure and stored;
        either way the stored projections are replayed against
        ``graph``'s current weights via :func:`contract`.
        """
        key = (graph.structure_fingerprint(), int(min_size),
               int(max_levels))
        projections = self._projections.get(key)
        if projections is None:
            indptr, indices, weights = graph.csr_arrays()
            unit = Graph(graph.num_vertices, indptr, indices,
                         np.ones(len(weights)))
            unit_levels = coarsen_hierarchy(unit, min_size=min_size,
                                            max_levels=max_levels)
            projections = tuple(level.fine_to_coarse
                                for level in unit_levels)
            self._projections.put(key, projections)
        levels: List[CoarseningLevel] = []
        current = graph
        for projection in projections:
            coarse = contract(current, projection)
            levels.append(CoarseningLevel(graph=coarse,
                                          fine_to_coarse=projection))
            current = coarse
        return levels

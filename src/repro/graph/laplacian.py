"""Graph Laplacians.

Step 2 of the paper's algorithm (Figure 2): the combinatorial Laplacian
``L(G) = D(G) - A(G)`` where ``D`` is the (weighted) degree diagonal and
``A`` the (weighted) adjacency matrix.  For any real vector ``x``,

    x^T L x  =  sum over edges (u, v) of  w_uv * (x_u - x_v)^2,

which is exactly the objective of the paper's Theorem 1 (weighted form in
the Section-4 footnote).  The normalized Laplacian is provided as an
extension for degree-irregular graphs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphStructureError
from repro.graph.adjacency import Graph
from repro.linalg.sparse import CSRMatrix


def laplacian(graph: Graph) -> CSRMatrix:
    """The combinatorial Laplacian ``D - A`` as a sparse CSR matrix."""
    n = graph.num_vertices
    u, v, w = graph.edge_arrays()
    degrees = graph.weighted_degrees()
    diag_idx = np.arange(n, dtype=np.int64)
    rows = np.concatenate([diag_idx, u, v])
    cols = np.concatenate([diag_idx, v, u])
    data = np.concatenate([degrees, -w, -w])
    return CSRMatrix.from_coo(n, rows, cols, data, sum_duplicates=True)


def laplacian_dense(graph: Graph) -> np.ndarray:
    """The combinatorial Laplacian as a dense array."""
    adjacency = graph.to_dense_adjacency()
    return np.diag(adjacency.sum(axis=1)) - adjacency


def normalized_laplacian_dense(graph: Graph) -> np.ndarray:
    """The symmetric normalized Laplacian ``I - D^{-1/2} A D^{-1/2}``.

    Isolated vertices (degree 0) are left with a zero row/column rather
    than dividing by zero; their eigenvalue contribution is 0 as expected
    for a singleton component.
    """
    adjacency = graph.to_dense_adjacency()
    degrees = adjacency.sum(axis=1)
    inv_sqrt = np.zeros_like(degrees)
    positive = degrees > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(degrees[positive])
    scaled = adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
    lap = -scaled
    lap[np.arange(len(degrees)), np.arange(len(degrees))] = np.where(
        positive, 1.0, 0.0
    )
    return lap


def quadratic_form(graph: Graph, x: np.ndarray) -> float:
    """``x^T L x`` computed edge-wise: ``sum w_uv (x_u - x_v)^2``.

    This is the continuous objective of the paper's Theorem 1 (up to the
    normalization constraints) and is exact for any vector, without
    materializing ``L``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (graph.num_vertices,):
        raise GraphStructureError(
            f"vector has shape {x.shape}, graph has "
            f"{graph.num_vertices} vertices"
        )
    u, v, w = graph.edge_arrays()
    if len(u) == 0:
        return 0.0
    diff = x[u] - x[v]
    return float((w * diff * diff).sum())


def rayleigh_quotient(graph: Graph, x: np.ndarray) -> float:
    """``x^T L x / x^T x`` after centering ``x`` against the constant vector.

    The Fiedler value is the minimum of this quotient over nonzero vectors
    orthogonal to the all-ones vector, so for any centered ``x`` the
    quotient upper-bounds ``lambda_2`` — a useful optimality probe in
    tests.
    """
    x = np.asarray(x, dtype=np.float64)
    centered = x - x.mean()
    denom = float(centered @ centered)
    if denom == 0.0:
        raise GraphStructureError(
            "vector is constant; Rayleigh quotient undefined"
        )
    return quadratic_form(graph, centered) / denom

"""Graph Laplacians.

Step 2 of the paper's algorithm (Figure 2): the combinatorial Laplacian
``L(G) = D(G) - A(G)`` where ``D`` is the (weighted) degree diagonal and
``A`` the (weighted) adjacency matrix.  For any real vector ``x``,

    x^T L x  =  sum over edges (u, v) of  w_uv * (x_u - x_v)^2,

which is exactly the objective of the paper's Theorem 1 (weighted form in
the Section-4 footnote).  The normalized Laplacian is provided as an
extension for degree-irregular graphs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphStructureError
from repro.graph.adjacency import Graph
from repro.linalg.sparse import CSRMatrix


def laplacian(graph: Graph) -> CSRMatrix:
    """The combinatorial Laplacian ``D - A`` as a sparse CSR matrix.

    Assembled directly from the graph's symmetric CSR arrays: each row
    is the (already sorted) negated neighbour weights with the weighted
    degree spliced in at the diagonal position.  This avoids the
    coordinate round-trip through :meth:`CSRMatrix.from_coo`, whose
    duplicate-resolution sort is an ``O(m log m)`` tax the hot path was
    paying on every level of every multilevel solve.
    """
    n = graph.num_vertices
    indptr, indices, weights = graph.csr_arrays()
    m = len(indices)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    degrees = np.bincount(rows, weights=weights, minlength=n) if m \
        else np.zeros(n)
    # Entries strictly below the diagonal keep their offset; the rest
    # shift right by one to make room for the diagonal entry.
    below = np.bincount(rows[indices < rows], minlength=n).astype(np.int64)
    new_indptr = np.zeros(n + 1, dtype=np.int64)
    new_indptr[1:] = (np.diff(indptr) + 1).cumsum()
    offsets = np.arange(m, dtype=np.int64) - indptr[rows]
    dest = new_indptr[rows] + offsets + (offsets >= below[rows])
    out_indices = np.empty(m + n, dtype=np.int64)
    out_data = np.empty(m + n)
    out_indices[dest] = indices
    out_data[dest] = -weights
    diag_pos = new_indptr[:-1] + below
    out_indices[diag_pos] = np.arange(n, dtype=np.int64)
    out_data[diag_pos] = degrees
    return CSRMatrix(n, new_indptr, out_indices, out_data)


def graph_from_laplacian(matrix: CSRMatrix,
                         rtol: float = 1e-8) -> Graph | None:
    """Reconstruct the graph whose combinatorial Laplacian is ``matrix``.

    The inverse of :func:`laplacian`, used by the preconditioned
    eigensolver backends: they receive only the matrix, but building the
    multilevel preconditioner needs the graph.  Returns ``None`` when the
    matrix is not Laplacian-like — any significantly positive
    off-diagonal entry, or a diagonal that is not the weighted degree of
    the recovered edges (row sums must vanish) — so callers can degrade
    to an unpreconditioned solve instead of misusing the hierarchy.

    Off-diagonal entries within ``rtol`` of zero (relative to the largest
    entry) are treated as structural zeros; the matrix is assumed
    symmetric, as everywhere in the solver stack.
    """
    n = matrix.n
    rows = np.repeat(np.arange(n, dtype=np.int64),
                     np.diff(matrix.indptr))
    cols = matrix.indices
    data = matrix.data
    scale = float(np.abs(data).max()) if len(data) else 0.0
    if scale == 0.0:
        return Graph.from_edges(n, [])
    off = rows != cols
    cutoff = rtol * scale
    if (data[off] > cutoff).any():
        return None
    edge_mask = off & (data < -cutoff) & (rows < cols)
    u = rows[edge_mask]
    v = cols[edge_mask]
    w = -data[edge_mask]
    degrees = np.zeros(n)
    np.add.at(degrees, u, w)
    np.add.at(degrees, v, w)
    if not np.allclose(matrix.diagonal(), degrees,
                       rtol=1e-6, atol=cutoff):
        return None
    return Graph.from_edges(n, np.column_stack([u, v]), weights=w)


def laplacian_dense(graph: Graph) -> np.ndarray:
    """The combinatorial Laplacian as a dense array."""
    adjacency = graph.to_dense_adjacency()
    return np.diag(adjacency.sum(axis=1)) - adjacency


def normalized_laplacian_dense(graph: Graph) -> np.ndarray:
    """The symmetric normalized Laplacian ``I - D^{-1/2} A D^{-1/2}``.

    Isolated vertices (degree 0) are left with a zero row/column rather
    than dividing by zero; their eigenvalue contribution is 0 as expected
    for a singleton component.
    """
    adjacency = graph.to_dense_adjacency()
    degrees = adjacency.sum(axis=1)
    inv_sqrt = np.zeros_like(degrees)
    positive = degrees > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(degrees[positive])
    scaled = adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
    lap = -scaled
    lap[np.arange(len(degrees)), np.arange(len(degrees))] = np.where(
        positive, 1.0, 0.0
    )
    return lap


def quadratic_form(graph: Graph, x: np.ndarray) -> float:
    """``x^T L x`` computed edge-wise: ``sum w_uv (x_u - x_v)^2``.

    This is the continuous objective of the paper's Theorem 1 (up to the
    normalization constraints) and is exact for any vector, without
    materializing ``L``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (graph.num_vertices,):
        raise GraphStructureError(
            f"vector has shape {x.shape}, graph has "
            f"{graph.num_vertices} vertices"
        )
    u, v, w = graph.edge_arrays()
    if len(u) == 0:
        return 0.0
    diff = x[u] - x[v]
    return float((w * diff * diff).sum())


def rayleigh_quotient(graph: Graph, x: np.ndarray) -> float:
    """``x^T L x / x^T x`` after centering ``x`` against the constant vector.

    The Fiedler value is the minimum of this quotient over nonzero vectors
    orthogonal to the all-ones vector, so for any centered ``x`` the
    quotient upper-bounds ``lambda_2`` — a useful optimality probe in
    tests.
    """
    x = np.asarray(x, dtype=np.float64)
    centered = x - x.mean()
    denom = float(centered @ centered)
    if denom == 0.0:
        raise GraphStructureError(
            "vector is constant; Rayleigh quotient undefined"
        )
    return quadratic_form(graph, centered) / denom

"""Undirected weighted graphs in compressed sparse row form.

This is the graph model of the paper's Step 1 (Figure 2): vertices are the
multi-dimensional points; edges connect points the user wants mapped to
nearby 1-D positions.  Edge weights encode mapping *priority* (Section 4):
the heavier the edge, the closer its endpoints should land in the linear
order.

Graphs are immutable; :meth:`Graph.with_edges_added` returns a new graph,
which keeps the Section-4 "access-pattern edge" workflow side-effect free.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.errors import (
    GraphStructureError,
    InvalidParameterError,
)

#: How :meth:`Graph.from_edges` resolves duplicate edges.
DUPLICATE_POLICIES = ("max", "sum", "error")


class Graph:
    """An undirected weighted graph on vertices ``0 .. n-1``.

    Stored internally as a symmetric CSR structure (every undirected edge
    appears in both endpoint rows).  Construct with :meth:`from_edges`.
    """

    __slots__ = ("_n", "_indptr", "_indices", "_weights")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray,
                 weights: np.ndarray):
        # Internal constructor; inputs must already form a valid symmetric
        # CSR structure.  Use from_edges() to build from edge lists.
        self._n = int(n)
        self._indptr = indptr
        self._indices = indices
        self._weights = weights

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int]],
                   weights: Sequence[float] | None = None,
                   duplicate_policy: str = "max") -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Parameters
        ----------
        n:
            Number of vertices.
        edges:
            Iterable of endpoint pairs.  Self-loops are rejected.
        weights:
            Optional per-edge positive weights (default all 1.0).
        duplicate_policy:
            What to do when the same undirected edge appears twice:
            keep the ``"max"`` weight (default — convenient when layering
            access-pattern edges over a base grid), ``"sum"`` the weights,
            or raise an ``"error"``.
        """
        if duplicate_policy not in DUPLICATE_POLICIES:
            raise InvalidParameterError(
                f"duplicate_policy must be one of {DUPLICATE_POLICIES}, "
                f"got {duplicate_policy!r}"
            )
        n = int(n)
        if n < 0:
            raise InvalidParameterError(f"n must be >= 0, got {n}")
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray)
                                else edges, dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise InvalidParameterError(
                f"edges must be (m, 2)-shaped, got {edge_array.shape}"
            )
        m = len(edge_array)
        if weights is None:
            weight_array = np.ones(m)
        else:
            weight_array = np.asarray(weights, dtype=np.float64)
            if weight_array.shape != (m,):
                raise InvalidParameterError(
                    f"got {m} edges but {weight_array.shape} weights"
                )
        if m:
            if edge_array.min() < 0 or edge_array.max() >= n:
                raise InvalidParameterError(
                    "edge endpoints out of range [0, n)"
                )
            if (edge_array[:, 0] == edge_array[:, 1]).any():
                raise GraphStructureError("self-loops are not allowed")
            if (weight_array <= 0).any():
                raise InvalidParameterError("edge weights must be positive")
        # Canonicalize endpoints as (min, max) and resolve duplicates.
        lo = edge_array.min(axis=1)
        hi = edge_array.max(axis=1)
        if m:
            keys = lo * n + hi
            uniq, first, inverse = np.unique(
                keys, return_index=True, return_inverse=True
            )
            if len(uniq) != m:
                if duplicate_policy == "error":
                    raise GraphStructureError("duplicate edges in input")
                if duplicate_policy == "sum":
                    merged = np.bincount(inverse, weights=weight_array,
                                         minlength=len(uniq))
                else:  # max
                    merged = np.full(len(uniq), -np.inf)
                    np.maximum.at(merged, inverse, weight_array)
                weight_array = merged
            else:
                weight_array = weight_array[first]
            lo = uniq // n
            hi = uniq % n
        return cls._from_canonical_edges(n, lo, hi, weight_array)

    @classmethod
    def _from_canonical_edges(cls, n: int, lo: np.ndarray, hi: np.ndarray,
                              weights: np.ndarray) -> "Graph":
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        wgt = np.concatenate([weights, weights])
        order = np.lexsort((dst, src))
        src, dst, wgt = src[order], dst[order], wgt[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = np.bincount(src, minlength=n).cumsum()
        return cls(n, indptr, dst, wgt)

    @classmethod
    def empty(cls, n: int) -> "Graph":
        """A graph with ``n`` vertices and no edges."""
        return cls.from_edges(n, [])

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._indices) // 2

    @property
    def total_weight(self) -> float:
        """Sum of undirected edge weights."""
        return float(self._weights.sum() / 2.0)

    def degree(self, v: int) -> int:
        """Number of neighbours of ``v``."""
        self._check_vertex(v)
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """Unweighted degree of every vertex."""
        return np.diff(self._indptr).astype(np.int64)

    def weighted_degrees(self) -> np.ndarray:
        """Sum of incident edge weights per vertex (the Laplacian diagonal)."""
        if not len(self._weights):
            return np.zeros(self._n)
        rows = np.repeat(np.arange(self._n), np.diff(self._indptr))
        return np.bincount(rows, weights=self._weights, minlength=self._n)

    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The symmetric CSR structure ``(indptr, indices, weights)``.

        Row ``v`` occupies ``indices[indptr[v]:indptr[v+1]]`` (ascending
        neighbour ids) with matching ``weights``.  Views of internal
        storage — callers must not mutate them.  This is the zero-copy
        entry point for vectorized algorithms (coarsening, Laplacian
        assembly) that would otherwise pay a Python-level accessor per
        vertex.
        """
        return self._indptr, self._indices, self._weights

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of ``v`` (read-only view, ascending)."""
        self._check_vertex(v)
        return self._indices[self._indptr[v]:self._indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors`."""
        self._check_vertex(v)
        return self._weights[self._indptr[v]:self._indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < len(row) and row[pos] == v)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; raises if absent."""
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        if pos >= len(row) or row[pos] != v:
            raise GraphStructureError(f"no edge between {u} and {v}")
        return float(self.neighbor_weights(u)[pos])

    def _check_vertex(self, v: int) -> None:
        if not 0 <= int(v) < self._n:
            raise InvalidParameterError(
                f"vertex {v} out of range [0, {self._n})"
            )

    # ------------------------------------------------------------------
    # Edge access
    # ------------------------------------------------------------------
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Arrays ``(u, v, w)`` of undirected edges with ``u < v``."""
        rows = np.repeat(np.arange(self._n), np.diff(self._indptr))
        mask = rows < self._indices
        return rows[mask], self._indices[mask], self._weights[mask]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate undirected edges as ``(u, v, weight)`` with ``u < v``."""
        u, v, w = self.edge_arrays()
        for i in range(len(u)):
            yield int(u[i]), int(v[i]), float(w[i])

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_edges_added(self, extra_edges: Iterable[Tuple[int, int]],
                         extra_weights: Sequence[float] | None = None,
                         duplicate_policy: str = "max") -> "Graph":
        """A new graph with extra edges layered on top of this one.

        This is the Section-4 extensibility hook: adding an edge ``(p, q)``
        tells Spectral LPM to treat ``p`` and ``q`` "as if they have
        Manhattan distance 1".
        """
        u0, v0, w0 = self.edge_arrays()
        extra = np.asarray(list(extra_edges)
                           if not isinstance(extra_edges, np.ndarray)
                           else extra_edges, dtype=np.int64)
        if extra.size == 0:
            extra = extra.reshape(0, 2)
        if extra_weights is None:
            we = np.ones(len(extra))
        else:
            we = np.asarray(extra_weights, dtype=np.float64)
        all_edges = np.concatenate(
            [np.stack([u0, v0], axis=1), extra], axis=0
        )
        all_weights = np.concatenate([w0, we])
        return Graph.from_edges(self._n, all_edges, all_weights,
                                duplicate_policy=duplicate_policy)

    def subgraph(self, vertices: Sequence[int]) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns the new graph (with vertices relabelled ``0..k-1`` in the
        order given) and the original-id array so callers can map back.
        """
        vertex_array = np.asarray(vertices, dtype=np.int64)
        if len(np.unique(vertex_array)) != len(vertex_array):
            raise InvalidParameterError("subgraph vertices must be distinct")
        relabel = np.full(self._n, -1, dtype=np.int64)
        relabel[vertex_array] = np.arange(len(vertex_array))
        u, v, w = self.edge_arrays()
        mask = (relabel[u] >= 0) & (relabel[v] >= 0)
        edges = np.stack([relabel[u[mask]], relabel[v[mask]]], axis=1)
        sub = Graph.from_edges(len(vertex_array), edges, w[mask])
        return sub, vertex_array

    # ------------------------------------------------------------------
    # Fingerprints (stable content identity for caches and stores)
    # ------------------------------------------------------------------
    def structure_fingerprint(self) -> str:
        """A stable hex digest of the graph's *topology* (edges, no weights).

        Two graphs share a structure fingerprint exactly when they have
        the same vertex count and the same undirected edge set.  The
        digest is computed from the canonical CSR arrays with SHA-256, so
        it is deterministic across processes and Python versions (unlike
        ``hash()``).  Used to key caches of weight-independent artifacts
        such as coarsening hierarchies.
        """
        h = hashlib.sha256(b"graph-structure-v1")
        h.update(np.int64(self._n).tobytes())
        h.update(np.ascontiguousarray(self._indptr, dtype=np.int64)
                 .tobytes())
        h.update(np.ascontiguousarray(self._indices, dtype=np.int64)
                 .tobytes())
        return h.hexdigest()

    def content_fingerprint(self) -> str:
        """A stable hex digest of the full graph content (edges + weights).

        Extends :meth:`structure_fingerprint` with the exact float64 edge
        weights, so two graphs share a content fingerprint exactly when
        they are indistinguishable to every algorithm in this library.
        Used to key order caches for arbitrary user graphs.
        """
        h = hashlib.sha256(b"graph-content-v1")
        h.update(self.structure_fingerprint().encode("ascii"))
        h.update(np.ascontiguousarray(self._weights, dtype=np.float64)
                 .tobytes())
        return h.hexdigest()

    def to_dense_adjacency(self) -> np.ndarray:
        """Dense symmetric adjacency matrix (weights as entries)."""
        dense = np.zeros((self._n, self._n))
        rows = np.repeat(np.arange(self._n), np.diff(self._indptr))
        dense[rows, self._indices] = self._weights
        return dense

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self.num_edges})"

"""Graph traversal: breadth-first search and connected components.

The spectral pipeline needs connectivity information twice: the Fiedler
vector is only defined for connected graphs (a disconnected graph has
``lambda_2 = 0`` and a locality order must be computed per component), and
BFS order is one of the deterministic tie-breaking keys for equal Fiedler
entries.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph


def bfs_order(graph: Graph, start: int = 0) -> np.ndarray:
    """Vertices of ``start``'s component in breadth-first visit order.

    Neighbours are visited in ascending id order, so the result is fully
    deterministic.
    """
    n = graph.num_vertices
    if not 0 <= start < n:
        raise InvalidParameterError(f"start vertex {start} out of range")
    seen = np.zeros(n, dtype=bool)
    seen[start] = True
    frontier = [start]
    visited: List[int] = []
    while frontier:
        next_frontier: List[int] = []
        for v in frontier:
            visited.append(v)
            for u in graph.neighbors(v):
                if not seen[u]:
                    seen[u] = True
                    next_frontier.append(int(u))
        frontier = next_frontier
    return np.array(visited, dtype=np.int64)


def connected_components(graph: Graph) -> Tuple[np.ndarray, int]:
    """Label every vertex with its component id.

    Returns ``(labels, count)``; component ids are assigned in order of
    their smallest vertex, so labelling is deterministic.  Isolated
    vertices form singleton components.
    """
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    count = 0
    for root in range(n):
        if labels[root] >= 0:
            continue
        labels[root] = count
        stack = [root]
        while stack:
            v = stack.pop()
            for u in graph.neighbors(v):
                if labels[u] < 0:
                    labels[u] = count
                    stack.append(int(u))
        count += 1
    return labels, count


def is_connected(graph: Graph) -> bool:
    """Whether the graph has exactly one connected component.

    The empty graph (0 vertices) is considered connected.
    """
    n = graph.num_vertices
    if n <= 1:
        return True
    return len(bfs_order(graph, 0)) == n


def component_vertex_lists(labels: np.ndarray,
                           count: int) -> List[np.ndarray]:
    """Group vertex ids by component label (ascending ids within each)."""
    return [np.flatnonzero(labels == c) for c in range(count)]

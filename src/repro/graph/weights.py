"""Edge-weight models for grid graphs.

Section 4 of the paper generalizes the unweighted grid graph to a weighted
one, where the weight of edge ``(p_i, p_j)`` is "the priority of mapping
``p_i`` and ``p_j`` to nearby locations".  Its footnote proposes the
concrete model ``w_ij = 1 / manhattan(p_i, p_j)`` for pairs within a
cut-off radius.  This module hosts that model and a couple of common
alternatives behind a small registry.

A weight function receives the *offset vector* between two grid cells
(element-wise coordinate difference) and returns a positive weight.  Grid
builders evaluate it once per distinct offset, so the cost is negligible.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.errors import InvalidParameterError

WeightFn = Callable[[Sequence[int]], float]


def unit_weight(offset: Sequence[int]) -> float:
    """Every edge weighs 1 (the paper's default, unweighted model)."""
    return 1.0


def inverse_manhattan(offset: Sequence[int]) -> float:
    """The paper's footnote model: ``w = 1 / manhattan distance``."""
    dist = sum(abs(int(c)) for c in offset)
    if dist == 0:
        raise InvalidParameterError("zero offset has no weight")
    return 1.0 / dist


def inverse_euclidean(offset: Sequence[int]) -> float:
    """``w = 1 / euclidean distance`` — a smoother falloff."""
    dist = math.sqrt(sum(int(c) ** 2 for c in offset))
    if dist == 0.0:
        raise InvalidParameterError("zero offset has no weight")
    return 1.0 / dist


def gaussian(offset: Sequence[int], sigma: float = 1.0) -> float:
    """``w = exp(-d^2 / (2 sigma^2))`` with ``d`` the Euclidean distance."""
    if sigma <= 0:
        raise InvalidParameterError(f"sigma must be positive, got {sigma}")
    sq = sum(int(c) ** 2 for c in offset)
    return math.exp(-sq / (2.0 * sigma * sigma))


_REGISTRY: dict[str, WeightFn] = {
    "unit": unit_weight,
    "inverse_manhattan": inverse_manhattan,
    "inverse_euclidean": inverse_euclidean,
    "gaussian": gaussian,
}


def weight_function(spec) -> WeightFn:
    """Resolve a weight spec (name or callable) to a weight function."""
    if callable(spec):
        return spec
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]
        except KeyError:
            raise InvalidParameterError(
                f"unknown weight model {spec!r}; "
                f"expected one of {sorted(_REGISTRY)} or a callable"
            ) from None
    raise InvalidParameterError(
        f"weight spec must be a name or callable, got {type(spec).__name__}"
    )


def weight_names() -> tuple[str, ...]:
    """Names accepted by :func:`weight_function`."""
    return tuple(sorted(_REGISTRY))

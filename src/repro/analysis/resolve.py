"""Scope, import, and attribute resolution over a set of parsed files.

The rules that enforce concurrency contracts need a *project* view no
single-file walk can give: which classes exist, which of their
attributes are locks, which are declared lock-guarded (the
``# guarded-by: <lock>`` trailing-comment convention), and — the hard
part — what project class ``self._memory`` or a ``for handle in
self._handles`` loop variable refers to, so a method call through an
attribute can be resolved to the class that implements it.

The inference here is deliberately *shallow and conservative*: it
reads ``__init__`` assignments, parameter and attribute annotations,
list/dict element types, and simple local bindings.  Anything it
cannot resolve it drops — for the lock-order graph a missed edge is a
missed check, while an invented edge would be a false deadlock report,
and for guarded-attribute checking the attribute set is explicit by
construction (only annotated attributes are checked at all).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.source import SourceFile

#: Trailing-comment convention declaring a lock-guarded attribute::
#:
#:     self._stats = ServiceStats()   # guarded-by: _lock
#:
#: The named lock must be an attribute of the same class; RPR001 then
#: enforces that every other touch of ``self._stats`` in the class sits
#: inside a ``with self._lock`` block.
GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Inline suppression::  # repro-lint: disable=RPR001,RPR005  (or =all)
SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: ``threading`` factories whose result is a with-able lock.
THREADING_LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: Typing containers whose *parameters* carry the element type.
_CONTAINER_BASES = frozenset({
    "List", "list", "Sequence", "Tuple", "tuple", "Set", "set",
    "FrozenSet", "frozenset", "Iterable", "Iterator", "Deque", "deque",
    "Dict", "dict", "Mapping", "MutableMapping", "DefaultDict",
    "OrderedDict",
})

#: Typing wrappers that are transparent to the underlying type.
_TRANSPARENT_BASES = frozenset({"Optional", "Union", "Final", "ClassVar"})


def suppressed_rules(line_text: str) -> Set[str]:
    """Rule ids suppressed by an inline comment on ``line_text``."""
    match = SUPPRESS_RE.search(line_text)
    if not match:
        return set()
    names = {part.strip() for part in match.group(1).split(",")}
    return {name for name in names if name}


@dataclass
class ClassInfo:
    """Everything the concurrency rules know about one class."""

    name: str
    module: str
    source: SourceFile
    node: ast.ClassDef
    #: lock attribute -> declaration line (``threading.Lock()`` et al.).
    lock_attrs: Dict[str, int] = field(default_factory=dict)
    #: guarded attribute -> (lock name, declaration line).
    guarded: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: attribute -> class-name string as written (scalar binding).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attribute -> element class-name string (container binding).
    attr_elem_types: Dict[str, str] = field(default_factory=dict)
    #: method name -> def node (incl. nested classes' methods excluded).
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    is_dataclass: bool = False

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"

    def lock_node_name(self, attr: str) -> str:
        """Graph-node spelling of one of this class's lock attributes."""
        return f"{self.name}.{attr}"


@dataclass
class ModuleInfo:
    """Per-module import table and class listing."""

    source: SourceFile
    #: local name -> dotted target ("np" -> "numpy",
    #: "OrderingService" -> "repro.service.ordering.OrderingService").
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


class ProjectIndex:
    """The cross-file symbol table the concurrency rules query."""

    def __init__(self, sources: Sequence[SourceFile]) -> None:
        self.sources = list(sources)
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_name: Dict[str, List[ClassInfo]] = {}
        for source in self.sources:
            info = _index_module(source)
            self.modules[source.module] = info
            for cls in info.classes.values():
                self.by_name.setdefault(cls.name, []).append(cls)

    # ------------------------------------------------------------------
    def resolve_class(self, module: str, name: str) -> Optional[ClassInfo]:
        """The project class a name refers to inside ``module``.

        Resolution order: the module's own classes, its import table,
        then a globally unique class of that name (covers string
        annotations naming a class the module imports lazily).  ``None``
        when the name is not a project class or is ambiguous.
        """
        if not name:
            return None
        simple = name.rsplit(".", 1)[-1]
        info = self.modules.get(module)
        if info is not None:
            if simple in info.classes and name == simple:
                return info.classes[simple]
            head = name.split(".", 1)[0]
            target = info.imports.get(head)
            if target is not None:
                dotted = target + name[len(head):]
                target_module, _, target_name = dotted.rpartition(".")
                target_info = self.modules.get(target_module)
                if target_info is not None:
                    return target_info.classes.get(target_name)
                # Imported from a module outside the linted set.
                return None
        candidates = self.by_name.get(simple, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def is_lock_like_class(self, cls: ClassInfo) -> bool:
        """Whether instances of ``cls`` are themselves with-able locks.

        A project class counts when it wraps real locks (has lock
        attributes), supports the context-manager protocol, and *says
        so in its name* — e.g. the artifact store's reentrant
        ``_StoreLock``.  The name gate keeps lifecycle context
        managers that happen to own locks (fleets, servers) from
        being mistaken for locks themselves.
        """
        return bool(cls.lock_attrs) and "Lock" in cls.name \
            and "__enter__" in cls.methods and "__exit__" in cls.methods

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """``cls`` plus its resolvable project base classes, BFS order."""
        order = [cls]
        seen = {(cls.module, cls.name)}
        queue = [cls]
        while queue:
            current = queue.pop(0)
            for base in current.node.bases:
                name = _dotted_source(base)
                target = self.resolve_class(current.module, name) \
                    if name else None
                if target is not None and \
                        (target.module, target.name) not in seen:
                    seen.add((target.module, target.name))
                    order.append(target)
                    queue.append(target)
        return order

    def attr_is_lock(self, cls: ClassInfo, attr: str) -> bool:
        """Whether ``self.<attr>`` on ``cls`` is a lock (direct,
        wrapped, or inherited from a project base class)."""
        return self.lock_node_for(cls, attr) is not None

    def lock_node_for(self, cls: ClassInfo,
                      attr: str) -> Optional[str]:
        """Graph-node name for ``self.<attr>`` if it is a lock.

        The node is named after the *declaring* class, so ``Counter``
        and ``Gauge`` taking the ``_Metric``-declared ``_lock`` share
        one node.
        """
        for owner in self.mro(cls):
            if attr in owner.lock_attrs:
                return owner.lock_node_name(attr)
            type_name = owner.attr_types.get(attr)
            if type_name is not None:
                target = self.resolve_class(owner.module, type_name)
                if target is not None and \
                        self.is_lock_like_class(target):
                    return owner.lock_node_name(attr)
        return None


# ---------------------------------------------------------------------------
# Module indexing
# ---------------------------------------------------------------------------
def _index_module(source: SourceFile) -> ModuleInfo:
    info = ModuleInfo(source=source)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.imports[alias.asname or alias.name.split(".")[0]] = \
                    alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                info.imports[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    for node in source.tree.body:
        _collect_classes(source, info, node)
    return info


def _collect_classes(source: SourceFile, info: ModuleInfo,
                     node: ast.AST) -> None:
    if isinstance(node, ast.ClassDef):
        info.classes[node.name] = _index_class(source, node)
        # Nested classes are rare here; index them flat by name too.
        for child in node.body:
            _collect_classes(source, info, child)
    elif isinstance(node, (ast.If, ast.Try)):
        for child in ast.iter_child_nodes(node):
            _collect_classes(source, info, child)


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = _dotted_source(target)
        if name and name.rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


def _index_class(source: SourceFile, node: ast.ClassDef) -> ClassInfo:
    cls = ClassInfo(name=node.name, module=source.module, source=source,
                    node=node, is_dataclass=_is_dataclass_decorated(node))
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[child.name] = child
    for method in cls.methods.values():
        params = _param_annotations(method)
        for stmt in ast.walk(method):
            _record_attr_binding(cls, source, stmt, params)
    return cls


def _param_annotations(method: ast.FunctionDef) -> Dict[str, str]:
    params: Dict[str, str] = {}
    args = method.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        if arg.annotation is not None:
            text = _annotation_text(arg.annotation)
            if text:
                params[arg.arg] = text
    return params


def _record_attr_binding(cls: ClassInfo, source: SourceFile,
                         stmt: ast.AST, params: Dict[str, str]) -> None:
    """Record lock/guard/type facts from one ``self.X = ...`` statement."""
    if isinstance(stmt, ast.Assign):
        targets, value, annotation = stmt.targets, stmt.value, None
    elif isinstance(stmt, ast.AnnAssign):
        targets, value, annotation = [stmt.target], stmt.value, \
            stmt.annotation
    else:
        return
    for target in targets:
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            continue
        attr = target.attr
        lineno = stmt.lineno
        line = source.line_text(lineno)
        guard = GUARDED_BY_RE.search(line)
        if guard:
            cls.guarded.setdefault(attr, (guard.group(1), lineno))
        if value is not None and _contains_threading_lock(value):
            cls.lock_attrs.setdefault(attr, lineno)
        scalar, elem = _binding_types(value, annotation, params)
        if scalar and attr not in cls.attr_types:
            cls.attr_types[attr] = scalar
        if elem and attr not in cls.attr_elem_types:
            cls.attr_elem_types[attr] = elem


def _contains_threading_lock(value: ast.AST) -> bool:
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            name = _dotted_source(node.func)
            if name and name.rsplit(".", 1)[-1] in \
                    THREADING_LOCK_FACTORIES:
                return True
    return False


def _binding_types(value: Optional[ast.AST],
                   annotation: Optional[ast.AST],
                   params: Dict[str, str]
                   ) -> Tuple[Optional[str], Optional[str]]:
    """Infer (scalar type name, element type name) for one binding."""
    scalar: Optional[str] = None
    elem: Optional[str] = None
    if annotation is not None:
        scalar, elem = _annotation_types(annotation)
    if scalar is None and value is not None:
        if isinstance(value, ast.Call):
            name = _dotted_source(value.func)
            if name and (_classish(name) or "." in name):
                scalar = name
        elif isinstance(value, ast.Name) and value.id in params:
            ann_scalar, ann_elem = _annotation_types_from_text(
                params[value.id])
            scalar = scalar or ann_scalar
            elem = elem or ann_elem
        elif isinstance(value, (ast.ListComp, ast.SetComp)):
            if isinstance(value.elt, ast.Call):
                name = _dotted_source(value.elt.func)
                if name:
                    elem = elem or name
        elif isinstance(value, (ast.List, ast.Tuple)) and value.elts:
            first = value.elts[0]
            if isinstance(first, ast.Call):
                name = _dotted_source(first.func)
                if name:
                    elem = elem or name
    return scalar, elem


def _annotation_types(annotation: ast.AST
                      ) -> Tuple[Optional[str], Optional[str]]:
    text = _annotation_text(annotation)
    if not text:
        return None, None
    return _annotation_types_from_text(text)


def _annotation_types_from_text(text: str
                                ) -> Tuple[Optional[str], Optional[str]]:
    """Split an annotation string into scalar vs element class names.

    ``Optional[ArtifactStore]`` → scalar ``ArtifactStore``;
    ``List[_WorkerHandle]`` / ``Dict[str, _Flight]`` → element type;
    ``LRUCache[str, OrderArtifact]`` → scalar ``LRUCache`` (a generic
    project class is the type, its parameters are payload).
    """
    try:
        node = ast.parse(text.strip().strip("\"'"), mode="eval").body
    except SyntaxError:
        return None, None
    return _annotation_types_node(node)


def _annotation_types_node(node: ast.AST
                           ) -> Tuple[Optional[str], Optional[str]]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _annotation_types_from_text(node.value)
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = _dotted_source(node)
        base = name.rsplit(".", 1)[-1] if name else ""
        if not base or base in _CONTAINER_BASES \
                or base in _TRANSPARENT_BASES or not _classish(base):
            return None, None
        return name, None
    if isinstance(node, ast.Subscript):
        base_name = _dotted_source(node.value) or ""
        base = base_name.rsplit(".", 1)[-1]
        args = node.slice.elts if isinstance(node.slice, ast.Tuple) \
            else [node.slice]
        if base in _TRANSPARENT_BASES:
            for arg in args:
                scalar, elem = _annotation_types_node(arg)
                if scalar or elem:
                    return scalar, elem
            return None, None
        if base in _CONTAINER_BASES:
            # Element type: the last parameter that is a project-ish
            # class name (dict value position beats the key).
            for arg in reversed(args):
                scalar, _ = _annotation_types_node(arg)
                if scalar:
                    return None, scalar
            return None, None
        if _classish(base):
            return base_name, None
        return None, None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            scalar, elem = _annotation_types_node(side)
            if scalar or elem:
                return scalar, elem
    return None, None


def _annotation_text(annotation: ast.AST) -> str:
    if isinstance(annotation, ast.Constant) \
            and isinstance(annotation.value, str):
        return annotation.value
    try:
        return ast.unparse(annotation)
    except Exception:
        return ""


def _classish(name: str) -> bool:
    """Whether a name reads as a class (CapWord, private underscores ok)."""
    simple = name.rsplit(".", 1)[-1].lstrip("_")
    return simple[:1].isupper()


def _dotted_source(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, else ``""``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# ---------------------------------------------------------------------------
# Per-method type environment (shared by the lock rules)
# ---------------------------------------------------------------------------
class TypeEnv:
    """Shallow expression-type environment for one method body.

    Combines the project-level attribute/annotation facts with
    first-wins local-variable bindings for a single method, and
    answers the two questions every concurrency rule asks: *what
    project class does this expression evaluate to* and *which lock
    does this expression denote*.  RPR002 (lock-order), RPR007
    (cross-class guarded access), and RPR008 (release-ordering) all
    resolve through this one layer, so an inference improvement here
    upgrades every rule at once.
    """

    def __init__(self, project: "ProjectIndex", cls: ClassInfo,
                 method: ast.FunctionDef) -> None:
        self.project = project
        self.cls = cls
        self.locals = local_types(project, cls, method)

    def class_of(self, expr: ast.AST) -> Optional[ClassInfo]:
        """The project class an expression evaluates to, if inferable."""
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.cls
            return self.resolve(self.locals.get(expr.id))
        if isinstance(expr, ast.Attribute):
            attr = self_attr(expr)
            if attr is not None:
                return self.resolve(self.cls.attr_types.get(attr))
            base = self.class_of(expr.value)
            if base is not None:
                return self.resolve(base.attr_types.get(expr.attr))
            return None
        if isinstance(expr, ast.Subscript):
            return self.elem_class_of(expr.value)
        if isinstance(expr, ast.Call):
            name = dotted(expr.func)
            return self.resolve(name) if name else None
        return None

    def elem_class_of(self, expr: ast.AST) -> Optional[ClassInfo]:
        if isinstance(expr, ast.Attribute):
            attr = self_attr(expr)
            if attr is not None:
                return self.resolve(self.cls.attr_elem_types.get(attr))
        if isinstance(expr, ast.Name):
            return self.resolve(self.locals.get("[]" + expr.id))
        return None

    def resolve(self, name: Optional[str]) -> Optional[ClassInfo]:
        if not name:
            return None
        return self.project.resolve_class(self.cls.module, name)

    def lock_node_acquired(self, expr: ast.AST) -> Optional[str]:
        """Graph node acquired by ``with <expr>``, if it is a lock."""
        attr = self_attr(expr)
        if attr is not None:
            node = self.project.lock_node_for(self.cls, attr)
            if node is not None:
                return node
        if isinstance(expr, ast.Attribute):
            owner = self.class_of(expr.value)
            if owner is not None:
                return self.project.lock_node_for(owner, expr.attr)
        return None


def local_types(project: "ProjectIndex", cls: ClassInfo,
                method: ast.FunctionDef) -> Dict[str, str]:
    """First-wins local-variable type bindings for one method.

    Scalar bindings map ``name -> ClassName``; container bindings map
    ``"[]" + name -> element ClassName`` (consumed by subscript
    resolution).  Conflicting rebinds keep the first type seen — wrong
    in pathological code, conservative in practice.
    """
    names: Dict[str, str] = {}

    def put(key: str, value: Optional[str]) -> None:
        if value and key not in names:
            names[key] = value

    args = method.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        if arg.annotation is None or arg.arg == "self":
            continue
        scalar, elem = _annotation_types(arg.annotation)
        put(arg.arg, scalar)
        put("[]" + arg.arg, elem)

    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            value = node.value
            if isinstance(value, ast.Call):
                put(name, dotted(value.func) or None)
            elif isinstance(value, ast.Attribute):
                attr = self_attr(value)
                if attr is not None:
                    put(name, cls.attr_types.get(attr))
                    put("[]" + name, cls.attr_elem_types.get(attr))
            elif isinstance(value, ast.Subscript):
                target = value.value
                attr = self_attr(target)
                if attr is not None:
                    put(name, cls.attr_elem_types.get(attr))
        elif isinstance(node, ast.For) \
                and isinstance(node.target, ast.Name):
            attr = self_attr(node.iter)
            if attr is not None:
                put(node.target.id, cls.attr_elem_types.get(attr))
    return names


# ---------------------------------------------------------------------------
# Shared AST helpers for the rule walkers
# ---------------------------------------------------------------------------
def self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``, else ``None``."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def with_lock_names(item: ast.withitem) -> Optional[str]:
    """``X`` when a with-item context is ``self.X``, else ``None``."""
    return self_attr(item.context_expr)


def dotted(node: ast.AST) -> str:
    """Public alias of the dotted-chain renderer."""
    return _dotted_source(node)

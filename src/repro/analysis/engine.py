"""The lint engine: discover, parse, index once, run every rule.

All selected rules share one :class:`~repro.analysis.resolve.
ProjectIndex` built from a single parse of every file — the cross-file
rules (lock order, wire reachability) need the whole project anyway,
and the per-file rules ride along for free.  The engine also owns the
two filters that apply to *every* rule: ``--select`` / ``--ignore``
and the inline ``# repro-lint: disable=RPRxxx`` trailing comment on
the flagged line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.resolve import ProjectIndex, suppressed_rules
from repro.analysis.rules import ALL_RULE_IDS, PARSE_RULE_ID, REGISTRY
from repro.analysis.source import ParseFailure, SourceFile, load_sources


class SelectionError(ValueError):
    """An unknown rule id in ``--select`` / ``--ignore``."""


@dataclass
class LintRun:
    """Everything one engine pass produced."""

    findings: List[Finding]
    sources: List[SourceFile] = field(default_factory=list)
    failures: List[ParseFailure] = field(default_factory=list)
    project: Optional[ProjectIndex] = None


def resolve_selection(select: Optional[Sequence[str]] = None,
                      ignore: Optional[Sequence[str]] = None
                      ) -> List[str]:
    """The rule ids to run, in registry order; raises on unknown ids."""
    known = set(ALL_RULE_IDS) | {PARSE_RULE_ID}
    for name, values in (("--select", select), ("--ignore", ignore)):
        for rule_id in values or ():
            if rule_id not in known:
                raise SelectionError(
                    f"{name}: unknown rule id '{rule_id}' "
                    f"(known: {', '.join(sorted(known))})")
    ids = [rid for rid in ALL_RULE_IDS
           if (not select or rid in set(select))
           and rid not in set(ignore or ())]
    return ids


def run_lint(paths: Sequence, root: Optional[Path] = None,
             select: Optional[Sequence[str]] = None,
             ignore: Optional[Sequence[str]] = None) -> LintRun:
    """Lint ``paths`` and return the filtered, sorted findings."""
    rule_ids = resolve_selection(select, ignore)
    sources, failures = load_sources(paths, root=root)
    project = ProjectIndex(sources)

    findings: List[Finding] = []
    for rule_id in rule_ids:
        _info, checker = REGISTRY[rule_id]
        findings.extend(checker(project))
    # Parse failures are reported regardless of --select (a file the
    # linter cannot read is a gap in every rule), but can be ignored
    # explicitly.
    if PARSE_RULE_ID not in set(ignore or ()):
        for failure in failures:
            findings.append(Finding(
                rule=PARSE_RULE_ID, severity="error",
                path=failure.display_path, line=failure.line, column=0,
                message=failure.error,
            ))

    by_path: Dict[str, SourceFile] = {
        source.display_path: source for source in sources
    }
    kept = [finding for finding in findings
            if not _suppressed(finding, by_path)]
    kept.sort(key=lambda f: (f.path, f.line, f.column, f.rule,
                             f.message))
    return LintRun(findings=kept, sources=sources, failures=failures,
                   project=project)


def _suppressed(finding: Finding,
                by_path: Dict[str, SourceFile]) -> bool:
    source = by_path.get(finding.path)
    if source is None:
        return False
    rules = suppressed_rules(source.line_text(finding.line))
    return "all" in rules or finding.rule in rules

"""Finding values of the static-analysis rules.

A :class:`Finding` is the one currency of :mod:`repro.analysis`: rules
emit them, the engine filters them (``--select`` / ``--ignore``, inline
suppressions, baseline), and the CLI renders them as text or JSON.
Findings carry a *stable fingerprint* — rule + path + message, hashed —
so the checked-in baseline pins pre-existing debt without rotting the
moment an unrelated edit shifts line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict

#: Severities, in increasing order of concern.  Both fail the lint gate
#: (a warning is a contract violation too); the split exists so reports
#: rank hard invariants above hygiene.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``line`` / ``column`` are 1-based / 0-based (the :mod:`ast`
    convention).  ``path`` is stored as given by the engine — relative
    to the lint root — so fingerprints agree between developer checkouts
    and CI.
    """

    rule: str
    severity: str
    path: str
    line: int
    column: int
    message: str

    def location(self) -> str:
        """``path:line`` — the clickable anchor of every report line."""
        return f"{self.path}:{self.line}"

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes the line number: moving unrelated code
        above a pinned finding must not make it "new".  Two identical
        violations in one file share a fingerprint; the baseline
        stores *counts* per fingerprint to keep them distinguishable
        from a genuinely new duplicate.
        """
        payload = f"{self.rule}|{self.path}|{self.message}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.rule} [{self.severity}] {self.message}")


@dataclass
class RuleInfo:
    """Identity card of one rule, used by ``--list-rules`` and tests."""

    rule_id: str
    name: str
    severity: str
    rationale: str
    extra: Dict[str, object] = field(default_factory=dict)

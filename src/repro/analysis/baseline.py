"""The checked-in baseline: pre-existing debt pinned, not silenced.

A baseline maps finding fingerprints (rule + path + message — no line
numbers, see :meth:`repro.analysis.findings.Finding.fingerprint`) to
*counts*.  The gate then fails only on findings beyond the pinned
count: fixing debt shrinks the baseline, new violations fail CI, and
shifting unrelated lines changes nothing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding

#: Where the repo-root baseline lives by default.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_FORMAT_VERSION = 1


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint counts from ``path``; ``{}`` when the file is absent."""
    if not Path(path).is_file():
        return {}
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"{path}: not a repro-lint baseline file")
    entries = data["entries"]
    return {str(key): int(value) for key, value in entries.items()}


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Pin every finding in ``findings``; returns the entry count."""
    counts: Dict[str, int] = {}
    for finding in findings:
        key = finding.fingerprint()
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "version": _FORMAT_VERSION,
        "entries": dict(sorted(counts.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return len(counts)


def partition(findings: Iterable[Finding],
              baseline: Dict[str, int]
              ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (new, pinned) against a baseline.

    For a fingerprint pinned ``n`` times, the first ``n`` occurrences
    (in the engine's stable path/line order) are pinned and the rest
    are new — an extra copy of an already-baselined violation still
    fails the gate.
    """
    budget = dict(baseline)
    new: List[Finding] = []
    pinned: List[Finding] = []
    for finding in findings:
        key = finding.fingerprint()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            pinned.append(finding)
        else:
            new.append(finding)
    return new, pinned

"""Source discovery and per-file parsing for the lint engine.

One :class:`SourceFile` per ``.py`` file: the raw text, the split
lines, the parsed AST, and the dotted module name derived from the
path (the segment chain starting at the innermost ``repro`` directory,
so a fixture tree ``tmp/repro/serve/protocol.py`` resolves to
``repro.serve.protocol`` exactly like the real one).  Discovery skips
non-source trees by default — ``__pycache__``, VCS and tool caches,
build output — so ``repro-lint src/`` never chokes on compiled or
generated artifacts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

#: Directory basenames never descended into.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hg", ".svn", ".tox", ".nox", ".venv",
    "venv", ".eggs", "build", "dist", ".mypy_cache", ".pytest_cache",
    ".hypothesis", ".benchmarks", "node_modules",
})


def iter_source_files(paths: Sequence) -> Iterator[Path]:
    """Yield every lintable ``.py`` file under ``paths``, sorted.

    Files are yielded once even when the given paths overlap; suffixes
    other than ``.py`` are ignored (a path given *explicitly* must
    still be a Python file — the linter parses, it does not guess).
    """
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py" and path not in seen:
                seen.add(path)
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in SKIP_DIRS or part.endswith(".egg-info")
                   for part in candidate.parts):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def module_name_for(path: Path) -> str:
    """The dotted module name a file would import as.

    Walks the path for the *last* ``repro`` package directory and joins
    from there (``.../src/repro/net/config.py`` →
    ``repro.net.config``); files outside any ``repro`` tree fall back
    to their stem, which keeps fixture snippets linting cleanly.
    """
    parts = list(path.parts)
    anchor = None
    for i, part in enumerate(parts[:-1]):
        if part == "repro":
            anchor = i
    if anchor is None:
        return path.stem
    dotted = list(parts[anchor:-1])
    stem = path.stem
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted)


@dataclass
class SourceFile:
    """One parsed source file plus everything rules need to report on it."""

    path: Path
    display_path: str
    module: str
    text: str
    lines: List[str]
    tree: ast.Module

    @classmethod
    def parse(cls, path: Path, display_path: Optional[str] = None
              ) -> "SourceFile":
        """Parse ``path``; raises :class:`SyntaxError` on broken source."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            display_path=display_path if display_path is not None
            else str(path),
            module=module_name_for(path),
            text=text,
            lines=text.splitlines(),
            tree=tree,
        )

    def line_text(self, lineno: int) -> str:
        """The 1-based source line, or ``""`` past the end."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class ParseFailure:
    """A file the engine could not parse (reported as its own finding)."""

    path: Path
    display_path: str
    error: str
    line: int = 0


def load_sources(paths: Sequence, root: Optional[Path] = None
                 ) -> Tuple[List[SourceFile], List[ParseFailure]]:
    """Discover and parse every source file under ``paths``.

    ``root`` anchors display paths (defaults to the current directory);
    files outside it keep their absolute path.  Broken files land in
    the failure list instead of aborting the whole run — a linter that
    dies on the first syntax error cannot report the other findings.
    """
    root = Path.cwd() if root is None else Path(root)
    sources: List[SourceFile] = []
    failures: List[ParseFailure] = []
    for path in iter_source_files(paths):
        try:
            display = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            display = str(path)
        try:
            sources.append(SourceFile.parse(path, display_path=display))
        except SyntaxError as exc:
            failures.append(ParseFailure(
                path=path, display_path=display,
                error=f"syntax error: {exc.msg}", line=exc.lineno or 0,
            ))
        except (OSError, UnicodeDecodeError) as exc:
            failures.append(ParseFailure(
                path=path, display_path=display, error=str(exc),
            ))
    return sources, failures

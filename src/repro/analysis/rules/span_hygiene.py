"""RPR005: tracing span sites keep the disabled path allocation-free.

The tracing layer's whole performance story is one boolean:
``span(...)`` checks ``_STATE.enabled`` and returns a shared no-op
singleton when tracing is off, so a span site in a hot path costs a
function call and a flag test — *provided the call site itself does not
allocate*.  Two ways to break that, both flagged here:

* building containers (dicts, lists, comprehensions, ``**kwargs``
  unpacking) or calling arbitrary functions inside the ``span(...)``
  argument list — those run even when tracing is disabled;
* instantiating :class:`repro.obs.tracing.Span` directly outside
  :mod:`repro.obs`, which bypasses the enabled check entirely.

Cheap scalar expressions (constants, names, attribute chains, slices
like ``key[:12]``, arithmetic, and ``len``/``str``-style builtins over
those) are allowed — they are what span attributes are made of.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.resolve import ProjectIndex, dotted
from repro.analysis.source import SourceFile

RULE = RuleInfo(
    rule_id="RPR005",
    name="span-hygiene",
    severity="warning",
    rationale="span(...) sites must stay allocation-free on the "
              "disabled path (the PR-7 one-boolean idiom).",
)

#: Builtins cheap enough to evaluate on the disabled path.
_CHEAP_CALLS = frozenset({
    "len", "int", "float", "str", "bool", "min", "max", "abs", "round",
    "type", "id",
})


def check(project: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    for source in project.sources:
        in_obs = source.module.startswith("repro.obs")
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            simple = name.rsplit(".", 1)[-1] if name else ""
            if simple == "Span" and not in_obs:
                findings.append(_finding(
                    source, node,
                    "Span(...) instantiated directly; use span(...) so "
                    "the disabled path stays a boolean check"))
            elif simple == "span":
                _check_span_call(source, node, findings)
    return findings


def _check_span_call(source: SourceFile, call: ast.Call,
                     findings: List[Finding]) -> None:
    for keyword in call.keywords:
        if keyword.arg is None:
            findings.append(_finding(
                source, keyword.value,
                "span(...) site unpacks **kwargs; the dict is built "
                "even when tracing is disabled"))
        elif not _is_cheap(keyword.value):
            findings.append(_finding(
                source, keyword.value,
                f"span(...) attribute '{keyword.arg}' allocates on "
                f"the disabled path; hoist it behind the enabled "
                f"branch or pass a scalar"))


def _is_cheap(node: ast.AST) -> bool:
    if isinstance(node, (ast.Constant, ast.Name)):
        return True
    if isinstance(node, ast.Attribute):
        return _is_cheap(node.value)
    if isinstance(node, ast.Subscript):
        return _is_cheap(node.value) and _is_cheap_slice(node.slice)
    if isinstance(node, ast.UnaryOp):
        return _is_cheap(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_cheap(node.left) and _is_cheap(node.right)
    if isinstance(node, ast.BoolOp):
        return all(_is_cheap(value) for value in node.values)
    if isinstance(node, ast.Compare):
        return _is_cheap(node.left) and \
            all(_is_cheap(cmp) for cmp in node.comparators)
    if isinstance(node, ast.IfExp):
        return (_is_cheap(node.test) and _is_cheap(node.body)
                and _is_cheap(node.orelse))
    if isinstance(node, ast.Call):
        name = dotted(node.func)
        return (name in _CHEAP_CALLS and not node.keywords
                and all(_is_cheap(arg) for arg in node.args))
    return False


def _is_cheap_slice(node: ast.AST) -> bool:
    if isinstance(node, ast.Slice):
        return all(part is None or _is_cheap(part)
                   for part in (node.lower, node.upper, node.step))
    return _is_cheap(node)


def _finding(source: SourceFile, node: ast.AST,
             message: str) -> Finding:
    return Finding(
        rule=RULE.rule_id, severity=RULE.severity,
        path=source.display_path,
        line=getattr(node, "lineno", 0),
        column=getattr(node, "col_offset", 0),
        message=message,
    )

"""RPR006: no wall-clock or randomness in determinism-critical modules.

The v1 artifact fingerprint (PR-6) promises: same geometry + same
config = same digest, across processes, machines, and releases.  That
promise extends backwards through everything the fingerprint hashes and
everything the ordering pipeline computes — one ``time.time()`` or
``random.shuffle`` in ``repro.core`` and cached artifacts silently stop
matching fresh computations.

This rule bans wall-clock reads, ``random`` / ``np.random`` / ``uuid``
use, and ``os.urandom`` inside the deterministic closure (``core``,
``curves``, ``graph``, ``geometry``, ``linalg``, and the fingerprint /
routing modules).  ``time.perf_counter`` / ``time.monotonic`` stay
legal — durations are observability, not outputs.  The builtin
``hash()`` is additionally banned in the fingerprint and routing
modules (outside ``__hash__`` itself): it is salted per process
(``PYTHONHASHSEED``) and must never leak into a digest or a shard
route.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.resolve import ProjectIndex, dotted
from repro.analysis.source import SourceFile

RULE = RuleInfo(
    rule_id="RPR006",
    name="determinism",
    severity="error",
    rationale="Fingerprint- and order-producing modules must be free "
              "of wall-clock and randomness (the PR-6 byte-stable "
              "v1 fingerprint contract).",
)

#: Module prefixes forming the deterministic closure.
DETERMINISTIC_PREFIXES = (
    "repro.core", "repro.curves", "repro.graph", "repro.geometry",
    "repro.linalg",
)

#: Exact modules added to the closure.
DETERMINISTIC_MODULES = (
    "repro.service.fingerprint", "repro.service.routing",
)

#: Modules where the process-salted builtin ``hash()`` is also banned.
HASH_BANNED_MODULES = frozenset(DETERMINISTIC_MODULES)

_BANNED_EXACT = frozenset({
    "time.time", "time.time_ns", "os.urandom",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "date.today",
})

_BANNED_PREFIXES = ("random.", "np.random.", "numpy.random.", "uuid.")

_BANNED_IMPORTS = frozenset({"random", "uuid"})


def is_deterministic_module(module: str) -> bool:
    if module in DETERMINISTIC_MODULES:
        return True
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in DETERMINISTIC_PREFIXES)


def check(project: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    for source in project.sources:
        if not is_deterministic_module(source.module):
            continue
        imports = project.modules[source.module].imports
        for node in ast.walk(source.tree):
            _check_node(source, node, imports, findings)
    return findings


def _expanded(name: str, imports: dict) -> str:
    """The import-resolved spelling of a dotted call target."""
    head, _, rest = name.partition(".")
    target = imports.get(head)
    if target is None:
        return name
    return target + ("." + rest if rest else "")


def _check_node(source: SourceFile, node: ast.AST, imports: dict,
                findings: List[Finding]) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _BANNED_IMPORTS:
                findings.append(_finding(
                    source, node,
                    f"deterministic module imports '{alias.name}'"))
        return
    if isinstance(node, ast.ImportFrom):
        if node.module and node.module.split(".")[0] in _BANNED_IMPORTS:
            findings.append(_finding(
                source, node,
                f"deterministic module imports from '{node.module}'"))
        return
    if not isinstance(node, ast.Call):
        return
    name = dotted(node.func)
    if not name:
        return
    resolved = _expanded(name, imports)
    reason = _banned_reason(name) or _banned_reason(resolved)
    if reason is not None:
        findings.append(_finding(
            source, node,
            f"deterministic module calls '{name}' ({reason})"))
        return
    if name == "hash" and source.module in HASH_BANNED_MODULES \
            and not _inside_dunder_hash(source, node):
        findings.append(_finding(
            source, node,
            "builtin hash() is salted per process "
            "(PYTHONHASHSEED) and must not feed a fingerprint or "
            "shard route; use hashlib"))


def _banned_reason(name: str) -> Optional[str]:
    if name in _BANNED_EXACT:
        return "wall-clock/entropy source"
    for prefix in _BANNED_PREFIXES:
        if name.startswith(prefix):
            return "nondeterministic source"
    return None


def _inside_dunder_hash(source: SourceFile, node: ast.AST) -> bool:
    target_line = getattr(node, "lineno", 0)
    for func in ast.walk(source.tree):
        if isinstance(func, ast.FunctionDef) \
                and func.name == "__hash__":
            end = getattr(func, "end_lineno", func.lineno)
            if func.lineno <= target_line <= end:
                return True
    return False


def _finding(source: SourceFile, node: ast.AST,
             message: str) -> Finding:
    return Finding(
        rule=RULE.rule_id, severity=RULE.severity,
        path=source.display_path,
        line=getattr(node, "lineno", 0),
        column=getattr(node, "col_offset", 0),
        message=message,
    )

"""RPR001: declared lock-guarded attributes are only touched under the lock.

The convention is a trailing comment on the attribute's ``__init__``
assignment::

    self._stats = ServiceStats()          # guarded-by: _lock
    self._lock = threading.RLock()

From then on, every read or write of ``self._stats`` anywhere in the
class must sit inside ``with self._lock:``.  ``__init__`` itself is
exempt — object construction is single-threaded by definition — as are
methods whose name ends in ``_locked``, the codebase's convention for
helpers whose contract is "caller holds the lock" (``_save_locked``,
``_close_locked``).  A nested function body starts with an *empty*
held set, because a closure created under the lock may run long after
it was released.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.resolve import ClassInfo, ProjectIndex, self_attr

RULE = RuleInfo(
    rule_id="RPR001",
    name="lock-discipline",
    severity="error",
    rationale="Attributes annotated '# guarded-by: <lock>' may only be "
              "accessed inside 'with self.<lock>' in their class "
              "(the PR-4 race class).",
)


def check(project: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules.values():
        for cls in module.classes.values():
            if cls.guarded:
                _check_class(project, cls, findings)
    return findings


def _check_class(project: ProjectIndex, cls: ClassInfo,
                 findings: List[Finding]) -> None:
    for attr, (lock, lineno) in sorted(cls.guarded.items()):
        if not project.attr_is_lock(cls, lock):
            findings.append(Finding(
                rule=RULE.rule_id, severity=RULE.severity,
                path=cls.source.display_path, line=lineno, column=0,
                message=f"'{attr}' is declared guarded-by '{lock}' but "
                        f"'{cls.name}' has no lock attribute of that "
                        f"name",
            ))
    for name, method in cls.methods.items():
        if name == "__init__" or name.endswith("_locked"):
            continue
        checker = _MethodChecker(project, cls, findings)
        for stmt in method.body:
            checker.visit(stmt, frozenset())


class _MethodChecker:
    """Walks one method body tracking which locks are currently held."""

    def __init__(self, project: ProjectIndex, cls: ClassInfo,
                 findings: List[Finding]) -> None:
        self.project = project
        self.cls = cls
        self.findings = findings

    def visit(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                self.visit(item.context_expr, held)
                if item.optional_vars is not None:
                    self.visit(item.optional_vars, held)
                attr = self_attr(item.context_expr)
                if attr is not None and \
                        self.project.attr_is_lock(self.cls, attr):
                    acquired.add(attr)
            inner = frozenset(acquired)
            for stmt in node.body:
                self.visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # The closure runs later; whatever is held now is gone then.
            for child in ast.iter_child_nodes(node):
                self.visit(child, frozenset())
            return
        attr = self_attr(node)
        if attr is not None and attr in self.cls.guarded:
            lock = self.cls.guarded[attr][0]
            if lock not in held:
                self.findings.append(Finding(
                    rule=RULE.rule_id, severity=RULE.severity,
                    path=self.cls.source.display_path,
                    line=node.lineno, column=node.col_offset,
                    message=f"'{self.cls.name}.{attr}' is guarded by "
                            f"'{lock}' but accessed outside "
                            f"'with self.{lock}'",
                ))
        for child in ast.iter_child_nodes(node):
            self.visit(child, held)

"""The rule registry: stable rule IDs mapped to their checkers.

Each rule module exposes ``RULE`` (a :class:`repro.analysis.findings.
RuleInfo`) and ``check(project) -> List[Finding]``.  The engine runs
them in registry order; ``--select`` / ``--ignore`` filter by the IDs
listed here.  ``RPR000`` is reserved for parse failures and emitted by
the engine itself, not a rule module.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.resolve import ProjectIndex
from repro.analysis.rules import (
    cross_class_guard,
    determinism,
    env_knobs,
    lock_discipline,
    lock_order,
    release_order,
    span_hygiene,
    wire_contract,
)

#: Rule id of engine-level parse failures (not selectable off).
PARSE_RULE_ID = "RPR000"

_MODULES = (
    lock_discipline,
    lock_order,
    wire_contract,
    env_knobs,
    span_hygiene,
    determinism,
    cross_class_guard,
    release_order,
)

#: rule id -> (info, checker), in registry order.
REGISTRY: Dict[str, Tuple[RuleInfo, Callable[[ProjectIndex],
                                             List[Finding]]]] = {
    module.RULE.rule_id: (module.RULE, module.check)
    for module in _MODULES
}

ALL_RULE_IDS: Tuple[str, ...] = tuple(REGISTRY)

"""RPR008: manual ``acquire()`` needs a dominating ``try/finally``
release, and releases must unwind in reverse acquisition order.

``with`` blocks release on every path by construction — RPR001/RPR002
lean on that.  Manual ``lock.acquire()`` calls have no such guarantee:
an early ``return`` or an exception between the acquire and the
release leaks the lock and wedges every future waiter.  This rule
requires each manual acquire in a method to be *dominated* by a
``try/finally`` that releases the same lock expression — either the
acquire is the statement immediately before such a ``try``, or it sits
directly inside one whose ``finally`` releases it.  Context-manager
implementations are the sanctioned split: an acquire in ``__enter__``
(or ``acquire``) is exempt when the class's ``__exit__`` (or
``release``) releases the same expression — the artifact store's
``_StoreLock`` pattern.

Two ordering checks ride on the same walk, closing the blind spot
RPR002 has for manual calls (its graph only extends held context
through ``with`` nesting):

* releasing a lock while a *later-acquired* lock is still held
  (interleaved, non-LIFO release) is a finding — the survivor region
  inverts the acquisition order this very method established;
* acquiring a lock (manually or via ``with``) while manually holding
  another is checked against :func:`build_lock_graph`'s edges — if the
  established order runs the other way, the acquisition is a deadlock
  half waiting for its partner.

Lock expressions resolve through :class:`repro.analysis.resolve.
TypeEnv` (``self._lock``, ``conn.send_lock``, …) plus local variables
bound to a ``threading`` factory in the same method.  Unresolvable
expressions contribute nothing — a missed check, never a false alarm.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.resolve import (
    THREADING_LOCK_FACTORIES,
    ClassInfo,
    ProjectIndex,
    TypeEnv,
    dotted,
)
from repro.analysis.rules.lock_order import LockGraph, build_lock_graph

RULE = RuleInfo(
    rule_id="RPR008",
    name="release-ordering",
    severity="error",
    rationale="Manual lock.acquire() must be released by a dominating "
              "try/finally on every path, in reverse acquisition "
              "order, without inverting the project lock graph.",
)

#: (acquiring method, releasing counterpart) pairs that sanction an
#: acquire/release split across two methods of one class.
_PAIRED_METHODS = {"__enter__": "__exit__", "acquire": "release"}


@dataclass
class _Held:
    """One lock currently held on the straight-line path."""

    node: str   # graph-node spelling, e.g. "_StoreLock._thread_lock"
    text: str   # source spelling, e.g. "self._thread_lock"
    line: int
    manual: bool  # False for enclosing ``with`` acquisitions


def check(project: ProjectIndex) -> List[Finding]:
    graph = build_lock_graph(project)
    reach = _Reachability(graph)
    findings: List[Finding] = []
    for module in project.modules.values():
        for cls in module.classes.values():
            for method in cls.methods.values():
                scanner = _MethodScanner(project, cls, method, reach,
                                         findings)
                scanner.scan_body(method.body, [])
    return findings


class _Reachability:
    """Memoized path queries over the RPR002 may-acquire graph."""

    def __init__(self, graph: LockGraph) -> None:
        self.adj: Dict[str, Set[str]] = {}
        for (src, dst) in graph.edges:
            self.adj.setdefault(src, set()).add(dst)
        self._memo: Dict[str, Set[str]] = {}

    def reaches(self, src: str, dst: str) -> bool:
        if src not in self._memo:
            seen: Set[str] = set()
            stack = [src]
            while stack:
                for succ in self.adj.get(stack.pop(), ()):
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
            self._memo[src] = seen
        return dst in self._memo[src]


class _MethodScanner:
    def __init__(self, project: ProjectIndex, cls: ClassInfo,
                 method: ast.FunctionDef, reach: _Reachability,
                 findings: List[Finding]) -> None:
        self.project = project
        self.cls = cls
        self.method = method
        self.reach = reach
        self.findings = findings
        self.env = TypeEnv(project, cls, method)

    # -- lock resolution ----------------------------------------------
    def _lock_ref(self, expr: ast.AST) -> Optional[Tuple[str, str]]:
        """(graph node, source text) when ``expr`` denotes a lock."""
        node = self.env.lock_node_acquired(expr)
        if node is not None:
            return node, dotted(expr)
        if isinstance(expr, ast.Name):
            bound = self.env.locals.get(expr.id)
            if bound and bound.rsplit(".", 1)[-1] in \
                    THREADING_LOCK_FACTORIES:
                return f"<local {expr.id}>", expr.id
        return None

    def _call_event(self, stmt: ast.stmt
                    ) -> Optional[Tuple[str, str, str, int]]:
        """(kind, node, text, line) for a plain ``X.acquire()`` /
        ``X.release()`` expression statement."""
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr in ("acquire", "release")):
            return None
        ref = self._lock_ref(stmt.value.func.value)
        if ref is None:
            return None
        node, text = ref
        return stmt.value.func.attr, node, text, stmt.lineno

    # -- structural checks --------------------------------------------
    def _finally_release_texts(self, try_stmt: ast.Try) -> Set[str]:
        texts: Set[str] = set()
        for stmt in try_stmt.finalbody:
            for call in ast.walk(stmt):
                if isinstance(call, ast.Call) \
                        and isinstance(call.func, ast.Attribute) \
                        and call.func.attr == "release":
                    spelled = dotted(call.func.value)
                    if spelled:
                        texts.add(spelled)
        return texts

    def _paired_release(self, text: str) -> bool:
        partner = _PAIRED_METHODS.get(self.method.name)
        if partner is None or partner not in self.cls.methods:
            return False
        for call in ast.walk(self.cls.methods[partner]):
            if isinstance(call, ast.Call) \
                    and isinstance(call.func, ast.Attribute) \
                    and call.func.attr == "release" \
                    and dotted(call.func.value) == text:
                return True
        return False

    # -- findings ------------------------------------------------------
    def _report(self, line: int, message: str) -> None:
        self.findings.append(Finding(
            rule=RULE.rule_id, severity=RULE.severity,
            path=self.cls.source.display_path, line=line, column=0,
            message=message,
        ))

    def _check_inversion(self, node: str, text: str, line: int,
                         held: Sequence[_Held]) -> None:
        for entry in held:
            if entry.node != node \
                    and self.reach.reaches(node, entry.node):
                self._report(line, (
                    f"acquiring '{node}' (as '{text}') while holding "
                    f"'{entry.node}' inverts the established lock "
                    f"order '{node} -> {entry.node}'"))

    # -- traversal -----------------------------------------------------
    def scan_body(self, body: Sequence[ast.stmt], held: List[_Held],
                  finally_guard: Optional[Set[str]] = None) -> None:
        guard = finally_guard or set()
        i = 0
        while i < len(body):
            stmt = body[i]
            event = self._call_event(stmt)
            if event is not None:
                kind, node, text, line = event
                if kind == "acquire":
                    self._check_inversion(node, text, line, held)
                    nxt = body[i + 1] if i + 1 < len(body) else None
                    if isinstance(nxt, ast.Try) and text in \
                            self._finally_release_texts(nxt):
                        held.append(_Held(node, text, line, True))
                        self._scan_try(nxt, held)
                        i += 2
                        continue
                    if text not in guard \
                            and not self._paired_release(text):
                        self._report(line, (
                            f"'{text}.acquire()' has no dominating "
                            f"try/finally release — an exception or "
                            f"early return between acquire and "
                            f"release leaks the lock"))
                    held.append(_Held(node, text, line, True))
                elif kind == "release":
                    self._handle_release(node, text, line, held)
                i += 1
                continue
            self._scan_other(stmt, held, guard)
            i += 1

    def _handle_release(self, node: str, text: str, line: int,
                        held: List[_Held]) -> None:
        if held and held[-1].text == text:
            held.pop()
            return
        for idx in range(len(held) - 1, -1, -1):
            if held[idx].text == text:
                later = held[-1]
                self._report(line, (
                    f"'{text}' is released while '{later.text}' "
                    f"(acquired later, line {later.line}) is still "
                    f"held — releases must unwind in reverse "
                    f"acquisition order"))
                del held[idx]
                return
        # Release of a lock this path never acquired: a helper whose
        # caller holds the lock.  Out of scope for a static pass.

    def _scan_try(self, stmt: ast.Try, held: List[_Held]) -> None:
        guard = self._finally_release_texts(stmt)
        self.scan_body(stmt.body, held, finally_guard=guard)
        for handler in stmt.handlers:
            self.scan_body(handler.body, list(held),
                           finally_guard=guard)
        self.scan_body(stmt.orelse, list(held), finally_guard=guard)
        self.scan_body(stmt.finalbody, held)

    def _scan_other(self, stmt: ast.stmt, held: List[_Held],
                    guard: Set[str]) -> None:
        if isinstance(stmt, ast.Try):
            self._scan_try(stmt, held)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = list(held)
            for item in stmt.items:
                ref = self._lock_ref(item.context_expr)
                if ref is not None:
                    node, text = ref
                    line = item.context_expr.lineno
                    self._check_inversion(node, text, line, held)
                    inner.append(_Held(node, text, line, False))
            self.scan_body(stmt.body, inner, finally_guard=guard)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_embedded(stmt.test)
            self.scan_body(stmt.body, list(held), finally_guard=guard)
            self.scan_body(stmt.orelse, list(held),
                           finally_guard=guard)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_embedded(stmt.iter)
            self.scan_body(stmt.body, list(held), finally_guard=guard)
            self.scan_body(stmt.orelse, list(held),
                           finally_guard=guard)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A closure's acquires are its own straight-line problem;
            # it inherits none of today's held context.
            self.scan_body(stmt.body, [])
            return
        if isinstance(stmt, ast.ClassDef):
            return
        self._scan_embedded(stmt)

    def _scan_embedded(self, node: ast.AST) -> None:
        """Flag acquires buried in expression positions (``if
        lock.acquire(False):``, ``x = lock.acquire()``) — no statement
        boundary exists for a dominating try/finally to follow."""
        for call in ast.walk(node):
            if isinstance(call, ast.Call) \
                    and isinstance(call.func, ast.Attribute) \
                    and call.func.attr == "acquire" \
                    and self._lock_ref(call.func.value) is not None:
                text = dotted(call.func.value)
                self._report(call.lineno, (
                    f"'{text}.acquire()' in an expression position "
                    f"cannot be paired with a try/finally release; "
                    f"restructure as a plain acquire() followed by "
                    f"try/finally"))

"""RPR004: every ``REPRO_*`` environment read goes through the registry.

:mod:`repro.knobs` is the single source of truth for deployment knobs:
name, type, default, and the one module allowed to resolve it from the
environment (through a validating helper such as
``cutoff_from_env`` / ``positive_int_from_env``).  This rule flags:

* a ``REPRO_*`` read (``os.environ[...]``, ``os.environ.get``,
  ``os.getenv``, or a validating-helper call) whose key is not
  registered in :data:`repro.knobs.KNOBS`;
* a registered knob read outside its declared reader module;
* a harness-only knob (``reader=None``) read by library code at all.

Keys are matched when written as string literals or as module-level
string constants (``WORKERS_ENV = "REPRO_QUERY_WORKERS"``); a key the
rule cannot resolve statically is skipped — that is how the validating
helpers themselves, which receive the name as a parameter, stay clean.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.resolve import ProjectIndex, dotted
from repro.analysis.source import SourceFile
from repro.knobs import knob

RULE = RuleInfo(
    rule_id="RPR004",
    name="env-knobs",
    severity="error",
    rationale="REPRO_* environment reads must use the validated "
              "helpers and appear in the repro.knobs registry the "
              "README table is generated from.",
)

_KNOB_NAME_RE = re.compile(r"^REPRO_[A-Z0-9_]+$")

#: Validating helper functions whose first argument is the knob name.
VALIDATING_HELPERS = frozenset({
    "cutoff_from_env", "positive_int_from_env",
    "positive_float_from_env", "flag_from_env", "workers_from_env",
})


def check(project: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    for source in project.sources:
        constants = _module_string_constants(source)
        for node in ast.walk(source.tree):
            _check_node(source, node, constants, findings)
    return findings


def _module_string_constants(source: SourceFile) -> Dict[str, str]:
    constants: Dict[str, str] = {}
    for stmt in source.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Constant) \
                and isinstance(stmt.value.value, str):
            constants[stmt.targets[0].id] = stmt.value.value
    return constants


def _literal_key(node: Optional[ast.AST],
                 constants: Dict[str, str]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None


def _check_node(source: SourceFile, node: ast.AST,
                constants: Dict[str, str],
                findings: List[Finding]) -> None:
    key: Optional[str] = None
    raw_read = False
    if isinstance(node, ast.Subscript):
        base = dotted(node.value)
        if base in ("os.environ", "environ"):
            key = _literal_key(node.slice, constants)
            raw_read = True
    elif isinstance(node, ast.Call):
        name = dotted(node.func)
        if name in ("os.environ.get", "environ.get", "os.getenv",
                    "getenv", "os.environ.pop", "os.environ.setdefault"):
            key = _literal_key(node.args[0] if node.args else None,
                               constants)
            raw_read = True
        elif name and name.rsplit(".", 1)[-1] in VALIDATING_HELPERS:
            key = _literal_key(node.args[0] if node.args else None,
                               constants)
    if key is None or not _KNOB_NAME_RE.match(key):
        return

    entry = knob(key)
    if entry is None:
        findings.append(_finding(
            source, node,
            f"'{key}' is read from the environment but not registered "
            f"in repro.knobs.KNOBS"))
        return
    if entry.reader is None:
        findings.append(_finding(
            source, node,
            f"'{key}' is a test/benchmark-harness knob; library code "
            f"must not read it"))
        return
    if source.module != entry.reader:
        findings.append(_finding(
            source, node,
            f"'{key}' may only be resolved in its registered reader "
            f"module '{entry.reader}', not '{source.module}'"))
        return
    # In the reader module a *raw* read is still fine only for the
    # helper implementations themselves, which take the key as a
    # parameter and therefore never reach this point with a literal
    # key.  A literal raw read inside the reader module bypasses
    # validation just the same.
    if raw_read and not _inside_validating_helper(source, node):
        findings.append(_finding(
            source, node,
            f"'{key}' must be read through a validating helper "
            f"({', '.join(sorted(VALIDATING_HELPERS))}), not a bare "
            f"os.environ access"))


def _inside_validating_helper(source: SourceFile,
                              node: ast.AST) -> bool:
    target_line = getattr(node, "lineno", 0)
    for func in ast.walk(source.tree):
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and func.name in VALIDATING_HELPERS:
            end = getattr(func, "end_lineno", func.lineno)
            if func.lineno <= target_line <= end:
                return True
    return False


def _finding(source: SourceFile, node: ast.AST,
             message: str) -> Finding:
    return Finding(
        rule=RULE.rule_id, severity=RULE.severity,
        path=source.display_path,
        line=getattr(node, "lineno", 0),
        column=getattr(node, "col_offset", 0),
        message=message,
    )

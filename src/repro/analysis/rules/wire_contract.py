"""RPR003: dataclasses reachable from the wire must stay pickle-safe.

The worker protocol (:mod:`repro.serve.protocol`) and the socket
protocol (:mod:`repro.net.messages`) move dataclasses across process
and network boundaries by pickling.  A field that smuggles a lambda, a
lock, an open handle, or a queue into one of those payloads fails at
``pickle.dumps`` time — in production, under load, on the far side of a
socket.  This rule walks the static reachability closure from the wire
modules (plus the known payload classes routed through ``object``-typed
fields) and flags:

* lambda defaults and ``field(default_factory=lambda ...)``;
* fields annotated with unpicklable types (locks, sockets, IO handles,
  queues, threads);
* ``ndarray`` fields on classes that define no ``__reduce__`` /
  ``__reduce_ex__`` / ``__getstate__`` — arrays crossing the wire must
  opt into explicit revalidation (the PR-5 read-only reload contract)
  rather than default pickling.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.resolve import ClassInfo, ProjectIndex, dotted

RULE = RuleInfo(
    rule_id="RPR003",
    name="wire-contract",
    severity="error",
    rationale="Dataclasses reachable from repro.serve.protocol / "
              "repro.net.messages must be pickle-safe "
              "(the PR-5/PR-8 wire contract).",
)

#: Modules whose every dataclass is a wire root.
WIRE_MODULES = ("repro.serve.protocol", "repro.net.messages")

#: Payload classes that travel inside ``object``-typed wire fields and
#: are therefore invisible to annotation-based reachability.
EXTRA_WIRE_CLASSES = (
    "repro.service.artifacts.OrderArtifact",
    "repro.core.ordering.LinearOrder",
    "repro.geometry.pointset.PointSet",
    "repro.core.spectral.SpectralConfig",
    "repro.obs.tracing.SpanRecord",
)

#: Annotation type names (last dotted segment) that never pickle.
FORBIDDEN_TYPES = frozenset({
    "Lock", "RLock", "Event", "Condition", "Semaphore",
    "BoundedSemaphore", "Barrier", "Thread", "socket", "Queue",
    "SimpleQueue", "IO", "TextIO", "BinaryIO", "TextIOWrapper",
    "BufferedReader", "BufferedWriter", "FileIO",
})

#: Annotation type names marking an array field that needs an explicit
#: reduction hook on the class.
ARRAY_TYPES = frozenset({"ndarray", "NDArray"})

_REDUCTION_HOOKS = ("__reduce__", "__reduce_ex__", "__getstate__")


def check(project: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    for cls in _reachable_wire_classes(project):
        _check_class(project, cls, findings)
    return findings


def _reachable_wire_classes(project: ProjectIndex) -> List[ClassInfo]:
    roots: List[ClassInfo] = []
    for module_name in WIRE_MODULES:
        info = project.modules.get(module_name)
        if info is None:
            continue
        roots.extend(cls for cls in info.classes.values()
                     if cls.is_dataclass)
    for dotted_name in EXTRA_WIRE_CLASSES:
        module_name, _, cls_name = dotted_name.rpartition(".")
        info = project.modules.get(module_name)
        if info is not None and cls_name in info.classes:
            roots.append(info.classes[cls_name])

    seen: Set[Tuple[str, str]] = set()
    order: List[ClassInfo] = []
    queue = list(roots)
    while queue:
        cls = queue.pop(0)
        key = (cls.module, cls.name)
        if key in seen:
            continue
        seen.add(key)
        order.append(cls)
        for name in _field_type_names(cls):
            target = project.resolve_class(cls.module, name)
            if target is not None and target.is_dataclass:
                queue.append(target)
    return order


def _field_type_names(cls: ClassInfo) -> List[str]:
    names: List[str] = []
    for stmt, _field_name, annotation in _dataclass_fields(cls):
        names.extend(_type_names(annotation))
    return names


def _dataclass_fields(cls: ClassInfo
                      ) -> List[Tuple[ast.AnnAssign, str, ast.AST]]:
    fields = []
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            fields.append((stmt, stmt.target.id, stmt.annotation))
    return fields


def _type_names(annotation: ast.AST) -> List[str]:
    """Every dotted type name mentioned anywhere in an annotation."""
    names: List[str] = []
    stack = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Constant) \
                and isinstance(node.value, str):
            try:
                stack.append(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                pass
            continue
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = dotted(node)
            if name:
                names.append(name)
            if isinstance(node, ast.Attribute):
                continue
        stack.extend(ast.iter_child_nodes(node))
    return names


def _check_class(project: ProjectIndex, cls: ClassInfo,
                 findings: List[Finding]) -> None:
    has_hook = any(hook in cls.methods for hook in _REDUCTION_HOOKS)
    for stmt, field_name, annotation in _dataclass_fields(cls):
        label = f"{cls.name}.{field_name}"
        for name in _type_names(annotation):
            simple = name.rsplit(".", 1)[-1]
            if simple in FORBIDDEN_TYPES:
                findings.append(_finding(
                    cls, stmt,
                    f"wire field '{label}' is annotated with "
                    f"unpicklable type '{name}'"))
            elif simple in ARRAY_TYPES and not has_hook:
                findings.append(_finding(
                    cls, stmt,
                    f"wire field '{label}' carries an array but "
                    f"'{cls.name}' defines no __reduce__/"
                    f"__getstate__ revalidation hook"))
        if stmt.value is not None:
            for bad in _unpicklable_defaults(stmt.value):
                findings.append(_finding(
                    cls, bad,
                    f"wire field '{label}' default embeds a lambda "
                    f"(unpicklable)"))


def _unpicklable_defaults(value: ast.AST) -> List[ast.AST]:
    bad: List[ast.AST] = []
    if isinstance(value, ast.Lambda):
        bad.append(value)
    elif isinstance(value, ast.Call):
        # field(default_factory=lambda: ...) and friends.
        for node in ast.walk(value):
            if isinstance(node, ast.Lambda):
                bad.append(node)
    return bad


def _finding(cls: ClassInfo, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule=RULE.rule_id, severity=RULE.severity,
        path=cls.source.display_path,
        line=getattr(node, "lineno", cls.node.lineno),
        column=getattr(node, "col_offset", 0),
        message=message,
    )

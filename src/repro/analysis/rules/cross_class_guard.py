"""RPR007: guarded attributes stay guarded across object boundaries.

RPR001 enforces the ``# guarded-by: <lock>`` contract for ``self.``
accesses only — the class's own methods.  But the serving stack passes
lock-owning objects around freely (the dispatcher mutates per-connection
counters, caches expose hit/miss tallies), and a touch of
``conn.inflight`` from *another* class races exactly the same way a
``self._stats`` touch does.  This rule closes that blind spot: any
``other.attr`` access where ``other`` resolves (through the shallow
type inference in :class:`repro.analysis.resolve.TypeEnv`) to a project
class whose ``attr`` is declared guarded must sit inside
``with other.<lock>:`` — the *same expression* naming the same object —
or inside a method whose name ends in ``_locked`` (the "caller holds
the lock" convention).

Held locks are tracked as *(object expression, lock attribute)* pairs,
so ``with item.conn.lock:`` guards ``item.conn.inflight`` but not
``other_conn.inflight``.  Aliasing (``c = item.conn``) defeats the
textual match and the access is then simply unresolvable — a missed
check, never a false alarm, matching the rest of the engine's
philosophy.  Nested function bodies start with an empty held set for
the same reason RPR001's do: a closure created under the lock may run
long after it was released.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional, Tuple

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.resolve import (
    ClassInfo,
    ProjectIndex,
    TypeEnv,
    dotted,
    self_attr,
)

RULE = RuleInfo(
    rule_id="RPR007",
    name="cross-class-guard",
    severity="error",
    rationale="Another object's '# guarded-by' attribute may only be "
              "touched inside 'with <object>.<lock>' or a '*_locked' "
              "helper (the cross-object half of the PR-4 race class).",
)


def check(project: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules.values():
        for cls in module.classes.values():
            for name, method in cls.methods.items():
                if name.endswith("_locked"):
                    continue
                checker = _CrossChecker(project, cls, method, findings)
                for stmt in method.body:
                    checker.visit(stmt, frozenset())
    return findings


class _CrossChecker:
    """Walks one method tracking (object expr, lock attr) pairs held."""

    def __init__(self, project: ProjectIndex, cls: ClassInfo,
                 method: ast.FunctionDef, findings: List[Finding]) -> None:
        self.project = project
        self.cls = cls
        self.findings = findings
        self.env = TypeEnv(project, cls, method)

    # ------------------------------------------------------------------
    def _held_pair(self, expr: ast.AST) -> Optional[Tuple[str, str]]:
        """The (owner expr, lock attr) a with-item context acquires."""
        if not isinstance(expr, ast.Attribute):
            return None
        owner_text = dotted(expr.value)
        if not owner_text:
            return None
        owner = self.env.class_of(expr.value)
        if owner is None:
            return None
        if self.project.lock_node_for(owner, expr.attr) is None:
            return None
        return owner_text, expr.attr

    def _guard_for(self, owner: ClassInfo, attr: str) -> Optional[str]:
        """The declared guard lock of ``attr`` on ``owner`` (MRO-wide)."""
        for candidate in self.project.mro(owner):
            if attr in candidate.guarded:
                return candidate.guarded[attr][0]
        return None

    # ------------------------------------------------------------------
    def visit(self, node: ast.AST,
              held: FrozenSet[Tuple[str, str]]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                self.visit(item.context_expr, held)
                if item.optional_vars is not None:
                    self.visit(item.optional_vars, held)
                pair = self._held_pair(item.context_expr)
                if pair is not None:
                    acquired.add(pair)
            inner = frozenset(acquired)
            for stmt in node.body:
                self.visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # The closure runs later; whatever is held now is gone then.
            for child in ast.iter_child_nodes(node):
                self.visit(child, frozenset())
            return
        if isinstance(node, ast.Attribute) and self_attr(node) is None:
            self._check_access(node, held)
        for child in ast.iter_child_nodes(node):
            self.visit(child, held)

    def _check_access(self, node: ast.Attribute,
                      held: FrozenSet[Tuple[str, str]]) -> None:
        owner_text = dotted(node.value)
        if not owner_text:
            return
        owner = self.env.class_of(node.value)
        if owner is None:
            return
        lock = self._guard_for(owner, node.attr)
        if lock is None or (owner_text, lock) in held:
            return
        self.findings.append(Finding(
            rule=RULE.rule_id, severity=RULE.severity,
            path=self.cls.source.display_path,
            line=node.lineno, column=node.col_offset,
            message=f"'{owner.name}.{node.attr}' is guarded by "
                    f"'{lock}' but accessed via '{owner_text}."
                    f"{node.attr}' outside 'with {owner_text}.{lock}'",
        ))

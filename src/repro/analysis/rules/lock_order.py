"""RPR002: the cross-class lock-acquisition graph must be acyclic.

Builds a static may-acquire graph over every project lock: nodes are
``ClassName.lock_attr``, and an edge ``A -> B`` means some code path
acquires ``B`` while holding ``A`` — either directly (``with self._b``
nested inside ``with self._a``) or through a method call whose callee
(transitively) acquires ``B``.  Call targets are resolved through the
shallow type inference in :mod:`repro.analysis.resolve`: ``self.attr``
bindings, parameter annotations, container element types, and simple
local variables.  Unresolvable calls contribute nothing — for deadlock
detection a missed edge is a missed check, an invented edge is a false
alarm.

Self-edges are deliberately ignored: re-acquiring the *same* lock is
what ``RLock`` exists for (and how recursive helpers under one lock
look to a static pass), not an inversion.

The graph itself (:func:`build_lock_graph`) is exported for tests,
which assert it reconstructs the real hierarchy of
``ShardedIndexFrontend`` / ``OrderingService`` / ``ArtifactStore``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.resolve import (
    ClassInfo,
    ProjectIndex,
    TypeEnv,
)

RULE = RuleInfo(
    rule_id="RPR002",
    name="lock-order",
    severity="error",
    rationale="The static lock-acquisition graph across classes must "
              "be acyclic (the PR-4/PR-5 inversion class).",
)


@dataclass(frozen=True)
class EdgeSite:
    """Where one held->acquired pair was observed."""

    path: str
    line: int
    via: str  # "direct" or the resolved call, e.g. "LRUCache.get"


@dataclass
class LockGraph:
    """The may-acquire graph plus every witness site per edge."""

    nodes: Set[str] = field(default_factory=set)
    edges: Dict[Tuple[str, str], List[EdgeSite]] = \
        field(default_factory=dict)

    def add_edge(self, src: str, dst: str, site: EdgeSite) -> None:
        if src == dst:
            return
        self.edges.setdefault((src, dst), []).append(site)

    def successors(self, node: str) -> List[str]:
        return sorted(dst for (src, dst) in self.edges if src == node)

    def cycles(self) -> List[List[str]]:
        """Strongly connected components with more than one node."""
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(node: str) -> None:
            index[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in self.successors(node):
                if succ not in index:
                    strongconnect(succ)
                    low[node] = min(low[node], low[succ])
                elif succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

        for node in sorted(self.nodes):
            if node not in index:
                strongconnect(node)
        return sccs


def check(project: ProjectIndex) -> List[Finding]:
    graph = build_lock_graph(project)
    findings: List[Finding] = []
    for cycle in graph.cycles():
        member_set = set(cycle)
        site = _witness_site(graph, member_set)
        findings.append(Finding(
            rule=RULE.rule_id, severity=RULE.severity,
            path=site.path if site else "<project>",
            line=site.line if site else 0, column=0,
            message="lock-order cycle: "
                    + " -> ".join(cycle + [cycle[0]]),
        ))
    return findings


def _witness_site(graph: LockGraph,
                  members: Set[str]) -> Optional[EdgeSite]:
    for (src, dst), sites in sorted(graph.edges.items()):
        if src in members and dst in members and sites:
            return sites[0]
    return None


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------
def build_lock_graph(project: ProjectIndex) -> LockGraph:
    graph = LockGraph()
    methods: Dict[Tuple[str, str, str], "_MethodFacts"] = {}
    for module in project.modules.values():
        for cls in module.classes.values():
            for attr in cls.lock_attrs:
                graph.nodes.add(cls.lock_node_name(attr))
            for attr, type_name in cls.attr_types.items():
                target = project.resolve_class(cls.module, type_name)
                if target is not None and \
                        project.is_lock_like_class(target):
                    graph.nodes.add(cls.lock_node_name(attr))
            for name, node in cls.methods.items():
                key = (cls.module, cls.name, name)
                methods[key] = _collect_facts(project, cls, node)

    summaries = _fixpoint_summaries(methods)

    for (module, cls_name, _name), facts in sorted(methods.items()):
        _emit_edges(graph, facts, summaries)
    return graph


@dataclass
class _MethodFacts:
    """One method's acquisition and call events, in held context."""

    path: str
    #: (node acquired, held-at-that-point, line)
    acquisitions: List[Tuple[str, FrozenSet[str], int]] = \
        field(default_factory=list)
    #: (callee key, held-at-that-point, line, display name)
    calls: List[Tuple[Tuple[str, str, str], FrozenSet[str], int, str]] = \
        field(default_factory=list)


def _fixpoint_summaries(
        methods: Dict[Tuple[str, str, str], _MethodFacts]
) -> Dict[Tuple[str, str, str], Set[str]]:
    """May-acquire set per method, closed over the call graph."""
    summaries = {
        key: {node for node, _held, _line in facts.acquisitions}
        for key, facts in methods.items()
    }
    changed = True
    while changed:
        changed = False
        for key, facts in methods.items():
            summary = summaries[key]
            before = len(summary)
            for callee, _held, _line, _via in facts.calls:
                summary |= summaries.get(callee, set())
            if len(summary) != before:
                changed = True
    return summaries


def _emit_edges(graph: LockGraph, facts: _MethodFacts,
                summaries: Dict[Tuple[str, str, str], Set[str]]) -> None:
    for node, held, line in facts.acquisitions:
        for holder in held:
            graph.add_edge(holder, node,
                           EdgeSite(facts.path, line, "direct"))
    for callee, held, line, via in facts.calls:
        if not held:
            continue
        for node in summaries.get(callee, ()):
            for holder in held:
                graph.add_edge(holder, node,
                               EdgeSite(facts.path, line, via))


# ---------------------------------------------------------------------------
# Per-method fact collection
# ---------------------------------------------------------------------------
def _collect_facts(project: ProjectIndex, cls: ClassInfo,
                   method: ast.FunctionDef) -> _MethodFacts:
    facts = _MethodFacts(path=cls.source.display_path)
    walker = _FactWalker(project, cls, method, facts)
    for stmt in method.body:
        walker.visit(stmt, frozenset())
    return facts


class _FactWalker:
    def __init__(self, project: ProjectIndex, cls: ClassInfo,
                 method: ast.FunctionDef, facts: _MethodFacts) -> None:
        self.facts = facts
        self.env = TypeEnv(project, cls, method)

    # -- event extraction ------------------------------------------------
    def _acquired_node(self, expr: ast.AST) -> Optional[str]:
        """Graph node acquired by ``with <expr>``, if it is a lock."""
        return self.env.lock_node_acquired(expr)

    def _callee_key(self, call: ast.Call
                    ) -> Optional[Tuple[Tuple[str, str, str], str]]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        owner = self.env.class_of(func.value)
        if owner is None or func.attr not in owner.methods:
            return None
        key = (owner.module, owner.name, func.attr)
        return key, f"{owner.name}.{func.attr}"

    # -- traversal -------------------------------------------------------
    def visit(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                self.visit(item.context_expr, held)
                lock_node = self._acquired_node(item.context_expr)
                if lock_node is not None:
                    self.facts.acquisitions.append(
                        (lock_node, frozenset(held), item.context_expr
                         .lineno))
                    acquired.add(lock_node)
            inner = frozenset(acquired)
            for stmt in node.body:
                self.visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # A closure body may run with or without today's locks; a
            # guess either way invents edges, so it contributes nothing
            # to *this* method's held context but is still scanned with
            # an empty one.
            for child in ast.iter_child_nodes(node):
                self.visit(child, frozenset())
            return
        if isinstance(node, ast.Call):
            resolved = self._callee_key(node)
            if resolved is not None:
                key, via = resolved
                self.facts.calls.append(
                    (key, held, node.lineno, via))
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "acquire":
                lock_node = self._acquired_node(node.func.value)
                if lock_node is not None:
                    self.facts.acquisitions.append(
                        (lock_node, held, node.lineno))
        for child in ast.iter_child_nodes(node):
            self.visit(child, held)



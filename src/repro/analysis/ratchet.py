"""``repro-typecheck``: the gradual-typing ratchet.

The linter in this package checks invariants mypy cannot see (lock
discipline, wire contracts); mypy checks the thousand small contracts
no bespoke rule should.  The ratchet makes the second kind *stick*
without demanding the whole tree go strict at once: a checked-in
budget file (:data:`DEFAULT_BUDGET_NAME`) records the worst allowed
mypy error count per package, CI fails on any regression, and when a
package improves the budget is automatically shrunk so the gain can
never be given back.  Packages at budget 0 are, operationally, strict
— and every package listed here is at 0.

Layout of ``.typing-ratchet.json``::

    {
      "version": 1,
      "mypy": "mypy==1.14.1",          // the pin CI installs
      "common_flags": ["--disallow-untyped-defs", ...],
      "packages": {
        "repro.net": {"budget": 0},    // + optional "flags": [...]
        ...
      }
    }

mypy is deliberately *not* a runtime dependency: when it is not
installed the gate reports itself skipped and exits 0, so developer
machines without the ``[dev]`` extra lose nothing.  CI passes
``--require``, which turns a missing mypy into a hard failure — the
gate cannot silently evaporate there.  Tests inject a fake runner, so
the ratchet arithmetic (regression fails, improvement shrinks,
``--write`` rewrites) is covered even where mypy is absent.

Exit codes match ``repro-lint``: 0 clean, 1 regression, 2 usage or
environment errors.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import re
import subprocess
import sys
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

DEFAULT_BUDGET_NAME = ".typing-ratchet.json"

USAGE_EXIT = 2
REGRESSION_EXIT = 1

#: ``runner(package, flags, root) -> (error count, raw mypy output)``.
Runner = Callable[[str, Sequence[str], Path], Tuple[int, str]]

_SUMMARY_RE = re.compile(r"Found (\d+) errors?")


class RatchetError(Exception):
    """Configuration or environment problem (exit 2, not a regression)."""


@dataclass(frozen=True)
class PackageBudget:
    """One package's allowance in the ratchet."""

    package: str
    budget: int
    flags: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RatchetConfig:
    """The parsed budget file."""

    mypy: str
    common_flags: Tuple[str, ...]
    packages: Tuple[PackageBudget, ...]
    version: int = 1

    def flags_for(self, entry: PackageBudget) -> Tuple[str, ...]:
        return self.common_flags + entry.flags


@dataclass(frozen=True)
class PackageResult:
    """One package's observed error count against its budget."""

    package: str
    errors: int
    budget: int

    @property
    def status(self) -> str:
        if self.errors > self.budget:
            return "regressed"
        if self.errors < self.budget:
            return "improved"
        return "ok"


# ---------------------------------------------------------------------------
# Budget file round-trip
# ---------------------------------------------------------------------------
def load_config(path: Path) -> RatchetConfig:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise RatchetError(f"no budget file at {path}; create one or "
                           f"pass --budget") from None
    except json.JSONDecodeError as exc:
        raise RatchetError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != 1:
        raise RatchetError(f"{path}: expected a version-1 ratchet "
                           f"document")
    packages = data.get("packages")
    if not isinstance(packages, dict) or not packages:
        raise RatchetError(f"{path}: 'packages' must be a non-empty "
                           f"object")
    entries = []
    for name in sorted(packages):
        spec = packages[name]
        if not isinstance(spec, dict) \
                or not isinstance(spec.get("budget"), int) \
                or spec["budget"] < 0:
            raise RatchetError(f"{path}: package {name!r} needs a "
                               f"non-negative integer 'budget'")
        entries.append(PackageBudget(
            package=name, budget=spec["budget"],
            flags=tuple(spec.get("flags", ()))))
    return RatchetConfig(
        mypy=str(data.get("mypy", "mypy")),
        common_flags=tuple(data.get("common_flags", ())),
        packages=tuple(entries),
    )


def write_config(path: Path, config: RatchetConfig) -> None:
    document = {
        "version": config.version,
        "mypy": config.mypy,
        "common_flags": list(config.common_flags),
        "packages": {
            entry.package: (
                {"budget": entry.budget, "flags": list(entry.flags)}
                if entry.flags else {"budget": entry.budget})
            for entry in config.packages
        },
    }
    path.write_text(json.dumps(document, indent=2) + "\n",
                    encoding="utf-8")


def apply_budgets(config: RatchetConfig,
                  results: Sequence[PackageResult]) -> RatchetConfig:
    """A copy of ``config`` with the observed counts as new budgets."""
    observed = {result.package: result.errors for result in results}
    return replace(config, packages=tuple(
        replace(entry, budget=observed.get(entry.package, entry.budget))
        for entry in config.packages))


# ---------------------------------------------------------------------------
# The mypy runner
# ---------------------------------------------------------------------------
def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def package_target(package: str, root: Path) -> Path:
    """The source path ``python -m mypy`` is pointed at."""
    base = root / "src" / Path(*package.split("."))
    if base.is_dir():
        return base
    as_module = base.with_suffix(".py")
    if as_module.is_file():
        return as_module
    raise RatchetError(f"package {package!r} resolves to neither "
                       f"{base}/ nor {as_module}")


def run_mypy(package: str, flags: Sequence[str],
             root: Path) -> Tuple[int, str]:
    """Invoke mypy on one package; ``(error count, combined output)``.

    The count comes from mypy's own ``Found N errors`` summary line so
    notes and warnings never inflate it; a run that produces neither a
    summary nor a clean exit (mypy crashed, bad flag) raises.
    """
    target = package_target(package, root)
    command = [sys.executable, "-m", "mypy", *flags, str(target)]
    env = dict(os.environ)
    env["MYPYPATH"] = str(root / "src")
    proc = subprocess.run(command, capture_output=True, text=True,
                          cwd=str(root), env=env, check=False)
    output = proc.stdout + proc.stderr
    match = _SUMMARY_RE.search(output)
    if match is not None:
        return int(match.group(1)), output
    if proc.returncode == 0:
        return 0, output
    raise RatchetError(f"mypy failed on {package} (exit "
                       f"{proc.returncode}):\n{output}")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-typecheck",
        description="Per-package mypy error budgets: fail on any "
                    "regression, auto-shrink on improvement.",
    )
    parser.add_argument(
        "packages", nargs="*",
        help="subset of budgeted packages to check (default: all)")
    parser.add_argument(
        "--budget", metavar="PATH", default=None,
        help=f"budget file (default: {DEFAULT_BUDGET_NAME})")
    parser.add_argument(
        "--root", metavar="PATH", default=None,
        help="repository root containing src/ (default: cwd)")
    parser.add_argument(
        "--write", action="store_true",
        help="record the observed error counts as the new budgets "
             "(both directions) and exit 0")
    parser.add_argument(
        "--require", action="store_true",
        help="fail (exit 2) when mypy is not installed instead of "
             "skipping; CI sets this")
    parser.add_argument(
        "--list", action="store_true", dest="list_budgets",
        help="print the budget table and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None,
         runner: Optional[Runner] = None) -> int:
    options = build_parser().parse_args(argv)
    root = Path(options.root) if options.root else Path.cwd()
    budget_path = Path(options.budget) if options.budget \
        else root / DEFAULT_BUDGET_NAME
    try:
        config = load_config(budget_path)
    except RatchetError as exc:
        print(f"repro-typecheck: {exc}", file=sys.stderr)
        return USAGE_EXIT

    if options.list_budgets:
        print(f"# {config.mypy}; common flags: "
              f"{' '.join(config.common_flags)}")
        for entry in config.packages:
            extra = f"  [{' '.join(entry.flags)}]" if entry.flags else ""
            print(f"{entry.package:<24} budget {entry.budget}{extra}")
        return 0

    selected = list(config.packages)
    if options.packages:
        known = {entry.package: entry for entry in config.packages}
        unknown = [name for name in options.packages
                   if name not in known]
        if unknown:
            print(f"repro-typecheck: not in the budget file: "
                  f"{', '.join(unknown)}", file=sys.stderr)
            return USAGE_EXIT
        selected = [known[name] for name in options.packages]

    if runner is None:
        if not mypy_available():
            message = (f"repro-typecheck: mypy is not installed "
                       f"(want {config.mypy})")
            if options.require:
                print(f"{message}; --require makes that fatal",
                      file=sys.stderr)
                return USAGE_EXIT
            print(f"{message}; skipping the typecheck gate")
            return 0
        runner = run_mypy

    results: List[PackageResult] = []
    for entry in selected:
        try:
            errors, output = runner(entry.package,
                                    config.flags_for(entry), root)
        except RatchetError as exc:
            print(f"repro-typecheck: {exc}", file=sys.stderr)
            return USAGE_EXIT
        result = PackageResult(entry.package, errors, entry.budget)
        results.append(result)
        print(f"repro-typecheck: {entry.package:<24} "
              f"{errors:>3} error(s), budget {entry.budget} "
              f"[{result.status}]")
        if result.status == "regressed" and output.strip():
            sys.stdout.write(output if output.endswith("\n")
                             else output + "\n")

    if options.write:
        write_config(budget_path, apply_budgets(config, results))
        print(f"repro-typecheck: wrote {len(results)} budget(s) to "
              f"{budget_path}")
        return 0

    regressed = [r for r in results if r.status == "regressed"]
    improved = [r for r in results if r.status == "improved"]
    if regressed:
        names = ", ".join(f"{r.package} ({r.errors} > {r.budget})"
                          for r in regressed)
        print(f"repro-typecheck: typing regressed in {names}",
              file=sys.stderr)
        return REGRESSION_EXIT
    if improved:
        write_config(budget_path, apply_budgets(config, results))
        names = ", ".join(f"{r.package} ({r.budget} -> {r.errors})"
                          for r in improved)
        print(f"repro-typecheck: budgets ratcheted down for {names}; "
              f"commit the updated {budget_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

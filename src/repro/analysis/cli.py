"""``repro-lint``: the console entry point of :mod:`repro.analysis`.

Exit codes are CI-shaped: 0 when the tree is clean (or every finding
is pinned by the baseline), 1 when new findings exist, 2 on usage
errors.  ``--format json`` emits one machine-readable document on
stdout; text mode prints one ``path:line:col: RULE [severity]
message`` line per finding.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.engine import SelectionError, run_lint
from repro.analysis.rules import REGISTRY
from repro.knobs import render_knob_table

USAGE_EXIT = 2
FINDINGS_EXIT = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static invariant checks for the repro serving "
                    "stack (lock discipline, lock order, wire "
                    "contract, env knobs, span hygiene, determinism).",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/ if present, "
             "else the current directory)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=f"baseline file pinning known findings (default: "
             f"{DEFAULT_BASELINE_NAME} when it exists)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding as new")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="pin the current findings into the baseline file and "
             "exit 0")
    parser.add_argument(
        "--select", metavar="IDS", default=None,
        help="comma-separated rule ids to run (e.g. RPR001,RPR002)")
    parser.add_argument(
        "--ignore", metavar="IDS", default=None,
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--root", metavar="PATH", default=None,
        help="directory report paths are made relative to "
             "(default: the current directory)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit")
    parser.add_argument(
        "--print-knob-table", action="store_true",
        help="print the generated REPRO_* knob table (markdown) and "
             "exit")
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.print_knob_table:
        sys.stdout.write(render_knob_table())
        return 0
    if options.list_rules:
        for rule_id, (info, _checker) in REGISTRY.items():
            print(f"{rule_id}  {info.name:<16} [{info.severity}]  "
                  f"{info.rationale}")
        return 0

    paths = options.paths or (
        ["src"] if Path("src").is_dir() else ["."])
    root = Path(options.root) if options.root else None
    try:
        run = run_lint(paths, root=root,
                       select=_split_ids(options.select),
                       ignore=_split_ids(options.ignore))
    except SelectionError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return USAGE_EXIT

    baseline_path = Path(options.baseline) if options.baseline \
        else Path(DEFAULT_BASELINE_NAME)
    if options.write_baseline:
        count = write_baseline(baseline_path, run.findings)
        print(f"repro-lint: pinned {len(run.findings)} finding(s) "
              f"({count} fingerprint(s)) in {baseline_path}")
        return 0

    baseline = {}
    if not options.no_baseline and (options.baseline
                                    or baseline_path.is_file()):
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return USAGE_EXIT
    new, pinned = partition(run.findings, baseline)

    if options.format == "json":
        document = {
            "version": 1,
            "counts": {
                "files": len(run.sources),
                "findings": len(run.findings),
                "new": len(new),
                "baselined": len(pinned),
            },
            "findings": [
                dict(finding.as_dict(), new=finding in new)
                for finding in run.findings
            ],
        }
        json.dump(document, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for finding in new:
            print(finding.render())
        summary = (f"repro-lint: {len(run.sources)} file(s), "
                   f"{len(new)} new finding(s)")
        if pinned:
            summary += f", {len(pinned)} pinned by baseline"
        print(summary)
    return FINDINGS_EXIT if new else 0


if __name__ == "__main__":
    sys.exit(main())

"""Static invariant analysis for the repro serving stack.

A standard-library-only linter (console script: ``repro-lint``) that
machine-checks the contracts the previous PRs established by
convention: lock-guarded state (RPR001), lock-acquisition ordering
(RPR002), pickle-safe wire dataclasses (RPR003), registry-routed
``REPRO_*`` knobs (RPR004), allocation-free disabled span sites
(RPR005), and wall-clock/randomness-free deterministic modules
(RPR006).  See the README's "Static analysis" section for the
conventions (``# guarded-by:``, ``# repro-lint: disable=``) and each
rule's rationale.
"""

from repro.analysis.engine import LintRun, run_lint
from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.rules import ALL_RULE_IDS, REGISTRY

__all__ = [
    "ALL_RULE_IDS",
    "Finding",
    "LintRun",
    "REGISTRY",
    "RuleInfo",
    "run_lint",
]

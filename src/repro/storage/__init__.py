"""Disk substrate: pages, cost model, buffer pool, declustering."""

from repro.storage.buffer import (
    BufferStats,
    LRUBufferPool,
    replay_query_stream,
)
from repro.storage.declustering import (
    DECLUSTERING_SCHEMES,
    DeclusterReport,
    disk_of_pages,
    query_response_time,
    workload_response_stats,
)
from repro.storage.disk import (
    DiskCostModel,
    IOCost,
    query_io,
    span_scan_io,
    workload_io,
)
from repro.storage.pages import PageLayout

__all__ = [
    "BufferStats",
    "DECLUSTERING_SCHEMES",
    "DeclusterReport",
    "DiskCostModel",
    "IOCost",
    "LRUBufferPool",
    "PageLayout",
    "disk_of_pages",
    "query_io",
    "query_response_time",
    "replay_query_stream",
    "span_scan_io",
    "workload_io",
    "workload_response_stats",
]

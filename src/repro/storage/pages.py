"""Blocking a linear order into disk pages.

The whole point of a locality-preserving mapping, per the paper's
introduction, is "how to place the multi-dimensional data into a
one-dimensional storage media (e.g., the disk)".  A :class:`PageLayout`
realizes that placement: items are laid out in mapping order and cut into
fixed-capacity pages, so item with rank ``r`` lives on page
``r // page_size``.

Everything downstream (seek counting, buffering, declustering) consumes a
layout.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.ordering import LinearOrder
from repro.errors import InvalidParameterError


class PageLayout:
    """Items packed into fixed-size pages along a linear order."""

    __slots__ = ("_order", "_page_size", "_page_of")

    def __init__(self, order: LinearOrder, page_size: int):
        if page_size < 1:
            raise InvalidParameterError(
                f"page_size must be >= 1, got {page_size}"
            )
        self._order = order
        self._page_size = int(page_size)
        page_of = order.ranks // self._page_size
        page_of.flags.writeable = False
        self._page_of = page_of

    # ------------------------------------------------------------------
    @property
    def order(self) -> LinearOrder:
        return self._order

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def num_items(self) -> int:
        return self._order.n

    @property
    def num_pages(self) -> int:
        if self._order.n == 0:
            return 0
        return (self._order.n + self._page_size - 1) // self._page_size

    @property
    def page_of(self) -> np.ndarray:
        """Read-only array: ``page_of[item] = page id``."""
        return self._page_of

    # ------------------------------------------------------------------
    def items_on_page(self, page: int) -> np.ndarray:
        """Items stored on one page, in rank order."""
        if not 0 <= page < self.num_pages:
            raise InvalidParameterError(
                f"page {page} out of range [0, {self.num_pages})"
            )
        lo = page * self._page_size
        hi = min(lo + self._page_size, self._order.n)
        return self._order.permutation[lo:hi]

    def pages_for_items(self, items: Sequence[int]) -> np.ndarray:
        """Sorted distinct pages touched by an item set (e.g. a query)."""
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self._page_of[items])

    def page_run_lengths(self, pages: np.ndarray) -> List[int]:
        """Lengths of maximal runs of consecutive page ids.

        ``pages`` must be sorted and distinct (as returned by
        :meth:`pages_for_items`).  One run = one sequential read.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return []
        breaks = np.flatnonzero(np.diff(pages) > 1)
        run_bounds = np.concatenate([[-1], breaks, [len(pages) - 1]])
        return list(np.diff(run_bounds).astype(int))

    def __repr__(self) -> str:
        return (f"PageLayout(items={self.num_items}, "
                f"page_size={self._page_size}, pages={self.num_pages})")

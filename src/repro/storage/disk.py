"""A seek/transfer disk cost model.

The classical magnetic-disk abstraction the paper's application domain
assumes: reading ``p`` pages that form ``r`` contiguous runs costs

    cost = r * seek_cost + p * transfer_cost

(one positioning delay per run, one transfer per page).  The relative
magnitude of the two constants is what makes locality matter — with
``seek_cost >> transfer_cost``, a mapping that turns a range query into
few long runs wins even when it touches a few extra pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.storage.pages import PageLayout


@dataclass(frozen=True)
class DiskCostModel:
    """Seek and transfer costs in arbitrary time units.

    Defaults approximate a commodity drive: a seek is ~50x a sequential
    page transfer.
    """

    seek_cost: float = 5.0
    transfer_cost: float = 0.1

    def __post_init__(self):
        if self.seek_cost < 0 or self.transfer_cost < 0:
            raise InvalidParameterError("costs must be non-negative")

    def cost(self, pages: int, runs: int) -> float:
        """Cost of reading ``pages`` pages in ``runs`` contiguous runs."""
        if pages < 0 or runs < 0:
            raise InvalidParameterError("pages/runs must be >= 0")
        if runs > pages:
            raise InvalidParameterError(
                f"cannot have more runs ({runs}) than pages ({pages})"
            )
        return runs * self.seek_cost + pages * self.transfer_cost


@dataclass(frozen=True)
class IOCost:
    """I/O accounting of one query against one layout."""

    pages: int
    runs: int
    cost: float


def query_io(layout: PageLayout, items: Sequence[int],
             model: DiskCostModel | None = None) -> IOCost:
    """Pages, runs, and modelled cost of fetching an item set."""
    model = model or DiskCostModel()
    pages = layout.pages_for_items(items)
    runs = len(layout.page_run_lengths(pages))
    return IOCost(pages=len(pages), runs=runs,
                  cost=model.cost(len(pages), runs))


def workload_io(layout: PageLayout, queries: Sequence[Sequence[int]],
                model: DiskCostModel | None = None) -> IOCost:
    """Aggregate I/O over a query workload (costs summed)."""
    model = model or DiskCostModel()
    total_pages = 0
    total_runs = 0
    total_cost = 0.0
    for items in queries:
        one = query_io(layout, items, model)
        total_pages += one.pages
        total_runs += one.runs
        total_cost += one.cost
    return IOCost(pages=total_pages, runs=total_runs, cost=total_cost)


def span_scan_io(layout: PageLayout, items: Sequence[int],
                 model: DiskCostModel | None = None) -> IOCost:
    """Cost of the span-scan strategy the paper's Figure 6 motivates.

    Instead of fetching exactly the touched pages, read sequentially from
    the first relevant page through the last ("sequential access from the
    minimum point to the maximum point while eliminating the records that
    lie outside") — one seek, span-many transfers.
    """
    model = model or DiskCostModel()
    pages = layout.pages_for_items(items)
    if len(pages) == 0:
        return IOCost(pages=0, runs=0, cost=0.0)
    total = int(pages[-1] - pages[0] + 1)
    return IOCost(pages=total, runs=1, cost=model.cost(total, 1))

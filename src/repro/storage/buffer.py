"""An LRU buffer pool.

Completes the storage stack: query streams hit the buffer first, and a
mapping that clusters co-accessed items onto few pages gets a higher hit
rate for the same buffer size.  The implementation is a textbook
ordered-dict LRU with hit/miss/eviction accounting.

One pool may be shared by every query running against one
:class:`~repro.query.LinearStore` — including queries fanned out across
worker threads by ``query_many(parallelism=...)`` — so each access is
atomic: an internal lock guards the recency order and the counters,
keeping the conservation law ``hits + misses == accesses`` exact under
any interleaving.  Which *individual* accesses hit depends on the
interleaving (that is inherent to a shared LRU), but the totals never
drift.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class BufferStats:
    """Access accounting of a buffer run."""

    accesses: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Hits per access (0.0 for an untouched buffer)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class LRUBufferPool:
    """Fixed-capacity page buffer with least-recently-used eviction."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise InvalidParameterError(
                f"capacity must be >= 1, got {capacity}"
            )
        self._capacity = int(capacity)
        self._pages: OrderedDict[int, None] = OrderedDict()  # guarded-by: _lock
        # Each access mutates the recency dict and two counters as one
        # transaction; the lock makes that atomic so pools shared by
        # concurrent queries never corrupt the LRU order or the
        # accounting (hits + misses == accesses always).
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def resident(self) -> int:
        """Pages currently buffered."""
        with self._lock:
            return len(self._pages)

    def access(self, page: int) -> bool:
        """Touch one page; returns True on a hit.  Atomic."""
        page = int(page)
        with self._lock:
            if page in self._pages:
                self._pages.move_to_end(page)
                self._hits += 1
                return True
            self._misses += 1
            if len(self._pages) >= self._capacity:
                self._pages.popitem(last=False)
                self._evictions += 1
            self._pages[page] = None
            return False

    def access_many(self, pages: Iterable[int]) -> int:
        """Touch a sequence of pages; returns the number of hits.

        Each page access is individually atomic; the sequence as a whole
        may interleave with other threads' accesses (a shared LRU has no
        meaningful batch-atomic semantics — recency is global).
        """
        return sum(1 for page in pages if self.access(page))

    def contains(self, page: int) -> bool:
        """Whether a page is resident (does not touch recency)."""
        with self._lock:
            return int(page) in self._pages

    def stats(self) -> BufferStats:
        """Accounting snapshot (internally consistent under threads)."""
        with self._lock:
            return BufferStats(
                accesses=self._hits + self._misses,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )

    def reset(self) -> None:
        """Empty the buffer and zero the counters."""
        with self._lock:
            self._pages.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0


def replay_query_stream(capacity: int,
                        page_requests: Sequence[Sequence[int]]
                        ) -> BufferStats:
    """Run a stream of per-query page-id lists through a fresh LRU pool."""
    pool = LRUBufferPool(capacity)
    for pages in page_requests:
        pool.access_many(int(p) for p in pages)
    return pool.stats()

"""Declustering: spreading pages across parallel disks.

Another application the paper claims for locality-preserving mappings
(Sections 1 and 6).  The goal inverts single-disk clustering: a range
query should touch all ``M`` disks *evenly* so its pages can be fetched in
parallel.  The standard scheme assigns page ``p`` to disk ``p mod M``
along the linear order; with a good mapping, the pages of any query are
consecutive along the order and therefore stripe across disks almost
perfectly.

The quality metric is the classical *response time*: the maximum number
of pages any single disk must serve for a query (optimal =
``ceil(pages / M)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.storage.pages import PageLayout

DECLUSTERING_SCHEMES = ("round_robin",)


def disk_of_pages(num_pages: int, num_disks: int,
                  scheme: str = "round_robin") -> np.ndarray:
    """Disk assignment for every page id."""
    if num_disks < 1:
        raise InvalidParameterError(
            f"num_disks must be >= 1, got {num_disks}"
        )
    if scheme not in DECLUSTERING_SCHEMES:
        raise InvalidParameterError(
            f"unknown scheme {scheme!r}; "
            f"expected one of {DECLUSTERING_SCHEMES}"
        )
    return np.arange(num_pages, dtype=np.int64) % num_disks


@dataclass(frozen=True)
class DeclusterReport:
    """Parallel-I/O quality of one query against a declustered layout."""

    pages: int
    num_disks: int
    response_time: int
    optimal_response_time: int

    @property
    def slowdown(self) -> float:
        """response / optimal (1.0 = perfectly balanced)."""
        if self.optimal_response_time == 0:
            return 1.0
        return self.response_time / self.optimal_response_time


def query_response_time(layout: PageLayout, items: Sequence[int],
                        num_disks: int,
                        scheme: str = "round_robin") -> DeclusterReport:
    """Response time of one query on an ``num_disks``-way declustering."""
    assignment = disk_of_pages(layout.num_pages, num_disks, scheme)
    pages = layout.pages_for_items(items)
    if len(pages) == 0:
        return DeclusterReport(pages=0, num_disks=num_disks,
                               response_time=0, optimal_response_time=0)
    per_disk = np.bincount(assignment[pages], minlength=num_disks)
    optimal = int(np.ceil(len(pages) / num_disks))
    return DeclusterReport(
        pages=len(pages),
        num_disks=num_disks,
        response_time=int(per_disk.max()),
        optimal_response_time=optimal,
    )


def workload_response_stats(layout: PageLayout,
                            queries: Sequence[Sequence[int]],
                            num_disks: int,
                            scheme: str = "round_robin"
                            ) -> tuple[float, float]:
    """``(mean response time, mean slowdown)`` over a query workload."""
    responses = []
    slowdowns = []
    for items in queries:
        report = query_response_time(layout, items, num_disks, scheme)
        responses.append(report.response_time)
        slowdowns.append(report.slowdown)
    if not responses:
        return 0.0, 1.0
    return float(np.mean(responses)), float(np.mean(slowdowns))

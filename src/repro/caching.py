"""A small generic LRU cache, shared by every caching layer.

Both the ordering service's in-memory artifact tier
(:mod:`repro.service.ordering`) and the graph layer's coarsening
hierarchy cache (:mod:`repro.graph.coarsening`) need the same mechanics
— ordered-dict recency, capacity eviction, hit/miss counters — and the
graph layer cannot import the service layer, so the shared
implementation lives here next to :mod:`repro.errors`.  Capacity counts
entries, not bytes: values of wildly different sizes each occupy one
slot, which keeps the policy predictable for callers that know their
workload mix.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, Optional, TypeVar

from repro.errors import InvalidParameterError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A minimal ordered-dict LRU with hit/miss counters."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise InvalidParameterError(
                f"capacity must be >= 1, got {capacity}"
            )
        self._capacity = int(capacity)
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        """Maximum number of entries held."""
        return self._capacity

    def get(self, key: K) -> Optional[V]:
        """The cached value, refreshed as most-recently-used; else None."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) an entry, evicting the LRU beyond capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

"""A small generic LRU cache, shared by every caching layer.

Both the ordering service's in-memory artifact tier
(:mod:`repro.service.ordering`) and the graph layer's coarsening
hierarchy cache (:mod:`repro.graph.coarsening`) need the same mechanics
— ordered-dict recency, capacity eviction, hit/miss counters — and the
graph layer cannot import the service layer, so the shared
implementation lives here next to :mod:`repro.errors`.  Capacity counts
entries, not bytes: values of wildly different sizes each occupy one
slot, which keeps the policy predictable for callers that know their
workload mix.

Thread contract: a private, single-threaded cache costs nothing extra;
instances shared across threads (the ordering service's memory tier,
the coarsening :class:`~repro.graph.coarsening.HierarchyCache`) pass
``lock=True`` so the recency order and the hit/miss counters stay exact
under concurrent ``get``/``put`` — the counters are asserted to exact
deltas by the service-cache benchmarks, which now also run threaded.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import nullcontext
from typing import Generic, Hashable, Iterator, Optional, Tuple, TypeVar

from repro.errors import InvalidParameterError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A minimal ordered-dict LRU with hit/miss counters.

    Parameters
    ----------
    capacity:
        Maximum number of entries held.
    lock:
        ``True`` serializes every operation behind an internal
        :class:`threading.RLock`, making recency updates and the
        ``hits``/``misses`` counters exact under concurrency.  Default
        ``False`` (no overhead for single-threaded use); any instance
        shared across threads should enable it.
    """

    def __init__(self, capacity: int = 128, *, lock: bool = False):
        if capacity < 1:
            raise InvalidParameterError(
                f"capacity must be >= 1, got {capacity}"
            )
        self._capacity = int(capacity)
        self._entries: "OrderedDict[K, V]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.RLock() if lock else nullcontext()
        self._thread_safe = bool(lock)
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    @property
    def capacity(self) -> int:
        """Maximum number of entries held."""
        return self._capacity

    @property
    def thread_safe(self) -> bool:
        """Whether operations are serialized behind an internal lock."""
        return self._thread_safe

    def get(self, key: K) -> Optional[V]:
        """The cached value, refreshed as most-recently-used; else None."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) an entry, evicting the LRU beyond capacity."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[K]:
        # Iterates a snapshot: a locked cache must not hand out a live
        # OrderedDict iterator that a concurrent put() would invalidate.
        with self._lock:
            return iter(list(self._entries))

    def counters(self) -> Tuple[int, int]:
        """A ``(hits, misses)`` snapshot taken under the lock.

        External readers must come through here: the raw counters are
        guarded, and RPR007 flags any cross-class touch of them.
        """
        with self._lock:
            return self.hits, self.misses

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

"""Index structures built over linear orders."""

from repro.index.bplustree import BPlusTree
from repro.index.rtree import LeafStats, PackedRTree, RTreeNode

__all__ = ["BPlusTree", "LeafStats", "PackedRTree", "RTreeNode"]

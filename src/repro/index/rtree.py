"""Linear-order-packed R-trees.

"R-tree packing" is among the first applications the paper lists for
locality-preserving mappings.  The classic recipe (Kamel & Faloutsos'
Hilbert packing) sorts the data by its position along a linear order,
cuts the sorted sequence into leaves, and builds each upper level the
same way — so leaf quality is a direct function of the order's locality.
Packing by *any* :class:`~repro.mapping.LocalityMapping` rank drops in
here, which turns R-tree quality into another head-to-head metric for
spectral vs. fractal orders.

Quality metrics:

* total leaf MBR volume and margin (smaller = tighter leaves);
* leaf-pair overlap volume (less = fewer multi-path descents);
* node accesses for window queries (the end-to-end cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError, InvalidParameterError
from repro.geometry.boxes import Box
from repro.geometry.grid import Grid


@dataclass
class RTreeNode:
    """One node: an MBR plus either child nodes or data positions."""

    box: Box
    children: List["RTreeNode"]
    entries: np.ndarray  # leaf: positions into the packed point array
    level: int           # 0 = leaf

    @property
    def is_leaf(self) -> bool:
        return self.level == 0


def _mbr_of_points(points: np.ndarray) -> Box:
    return Box(points.min(axis=0), points.max(axis=0))


def _mbr_of_boxes(boxes: Sequence[Box]) -> Box:
    lo = np.min([b.lo for b in boxes], axis=0)
    hi = np.max([b.hi for b in boxes], axis=0)
    return Box(lo, hi)


class PackedRTree:
    """An R-tree bulk-loaded along a linear order.

    Build with :meth:`pack`; query with :meth:`window_query`; inspect
    quality with :meth:`leaf_stats`.
    """

    def __init__(self, root: RTreeNode, points: np.ndarray,
                 leaf_capacity: int, fanout: int):
        self._root = root
        self._points = points
        self._leaf_capacity = leaf_capacity
        self._fanout = fanout

    # ------------------------------------------------------------------
    @classmethod
    def pack(cls, grid: Grid, cells: Sequence[int], ranks: np.ndarray,
             leaf_capacity: int = 8, fanout: int = 8) -> "PackedRTree":
        """Bulk-load from grid cells sorted by mapping rank.

        Parameters
        ----------
        grid:
            The domain (gives cell coordinates).
        cells:
            Flat indices of the data points.
        ranks:
            Either the mapping's rank array over the *full grid* (length
            ``grid.size``; data is sorted by ``ranks[cell]``) or a
            per-point key array aligned with ``cells`` (length
            ``len(cells)``; e.g. a sparse spectral order from
            :meth:`repro.core.SpectralLPM.order_points`).
        leaf_capacity, fanout:
            Max entries per leaf / children per inner node.
        """
        if leaf_capacity < 1 or fanout < 2:
            raise InvalidParameterError(
                "need leaf_capacity >= 1 and fanout >= 2, got "
                f"{leaf_capacity} / {fanout}"
            )
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size == 0:
            raise InvalidParameterError("cannot pack an empty point set")
        ranks = np.asarray(ranks)
        if ranks.shape == (grid.size,):
            keys = ranks[cells]
        elif ranks.shape == cells.shape:
            keys = ranks
        else:
            raise DimensionError(
                f"ranks must have shape ({grid.size},) or {cells.shape}, "
                f"got {ranks.shape}"
            )
        by_rank = cells[np.argsort(keys, kind="stable")]
        points = grid.points_of(by_rank)

        # Leaves: consecutive rank-sorted chunks.
        leaves: List[RTreeNode] = []
        for start in range(0, len(points), leaf_capacity):
            chunk = slice(start, min(start + leaf_capacity, len(points)))
            leaves.append(RTreeNode(
                box=_mbr_of_points(points[chunk]),
                children=[],
                entries=np.arange(chunk.start, chunk.stop),
                level=0,
            ))
        # Upper levels: pack children in the same (rank) sequence.
        level = 0
        nodes = leaves
        while len(nodes) > 1:
            level += 1
            parents: List[RTreeNode] = []
            for start in range(0, len(nodes), fanout):
                group = nodes[start:start + fanout]
                parents.append(RTreeNode(
                    box=_mbr_of_boxes([n.box for n in group]),
                    children=group,
                    entries=np.empty(0, dtype=np.int64),
                    level=level,
                ))
            nodes = parents
        return cls(nodes[0], points, leaf_capacity, fanout)

    # ------------------------------------------------------------------
    @property
    def root(self) -> RTreeNode:
        return self._root

    @property
    def num_points(self) -> int:
        return len(self._points)

    @property
    def height(self) -> int:
        """Levels from root to leaf inclusive."""
        return self._root.level + 1

    def leaves(self) -> List[RTreeNode]:
        """All leaf nodes, left to right."""
        result: List[RTreeNode] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                result.append(node)
            else:
                stack.extend(reversed(node.children))
        return result

    # ------------------------------------------------------------------
    def window_query(self, box: Box) -> Tuple[np.ndarray, int]:
        """Points inside ``box`` and the number of nodes visited."""
        hits: List[int] = []
        visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            if not node.box.intersects(box):
                continue
            if node.is_leaf:
                for position in node.entries:
                    if box.contains_point(self._points[position]):
                        hits.append(int(position))
            else:
                stack.extend(node.children)
        coords = (self._points[np.array(sorted(hits), dtype=np.int64)]
                  if hits else np.empty((0, self._points.shape[1]),
                                        dtype=np.int64))
        return coords, visited

    # ------------------------------------------------------------------
    def leaf_stats(self) -> "LeafStats":
        """Geometric quality of the leaf level."""
        leaves = self.leaves()
        volumes = np.array([leaf.box.volume for leaf in leaves],
                           dtype=np.float64)
        margins = np.array([
            sum(b - a for a, b in zip(leaf.box.lo, leaf.box.hi))
            for leaf in leaves
        ], dtype=np.float64)
        overlap = 0.0
        for i in range(len(leaves)):
            for j in range(i + 1, len(leaves)):
                inter = leaves[i].box.intersection(leaves[j].box)
                if inter is not None:
                    overlap += inter.volume
        return LeafStats(
            leaf_count=len(leaves),
            total_volume=float(volumes.sum()),
            mean_volume=float(volumes.mean()),
            total_margin=float(margins.sum()),
            total_overlap=float(overlap),
        )


@dataclass(frozen=True)
class LeafStats:
    """Leaf-level geometric quality of a packed R-tree."""

    leaf_count: int
    total_volume: float
    mean_volume: float
    total_margin: float
    total_overlap: float

"""A B+-tree over linear-order keys.

The paper's premise is that multi-dimensional data lives in a
*one-dimensional* access method; this module provides that access method
so the end-to-end story is executable: map each cell/point to its mapping
rank, key a B+-tree on the ranks, and answer range queries by descending
to the first relevant leaf and walking the leaf chain.

Scope: bulk-loading (the natural fit for write-once spatial layouts) and
single-key inserts with node splits.  Deletion is intentionally out of
scope — none of the paper's workloads delete — and documented as such.

All search operations report the number of node accesses, which is the
I/O proxy the benchmarks compare across mappings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError


@dataclass
class _LeafNode:
    keys: List[int] = field(default_factory=list)
    values: List[object] = field(default_factory=list)
    next_leaf: Optional["_LeafNode"] = None

    @property
    def is_leaf(self) -> bool:
        return True


@dataclass
class _InnerNode:
    # separators[i] is the smallest key reachable under children[i + 1].
    separators: List[int] = field(default_factory=list)
    children: List[object] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return False


def _child_position(node: _InnerNode, key: int) -> int:
    """Index of the child subtree that may contain ``key``."""
    position = 0
    while (position < len(node.separators)
           and key >= node.separators[position]):
        position += 1
    return position


class BPlusTree:
    """An insert-and-scan B+-tree with integer keys.

    Parameters
    ----------
    order:
        Maximum number of children per inner node (and keys per leaf).
        Must be >= 3.
    """

    def __init__(self, order: int = 32):
        if order < 3:
            raise InvalidParameterError(f"order must be >= 3, got {order}")
        self._order = order
        self._root: object = _LeafNode()
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, keys: Sequence[int], values: Sequence[object],
                  order: int = 32, fill: float = 1.0) -> "BPlusTree":
        """Build bottom-up from sorted distinct keys.

        ``fill`` (0 < fill <= 1) controls leaf occupancy: 1.0 packs
        leaves full (read-only workloads), lower values leave insert
        slack.
        """
        if len(keys) != len(values):
            raise InvalidParameterError(
                f"{len(keys)} keys but {len(values)} values"
            )
        if not 0.0 < fill <= 1.0:
            raise InvalidParameterError(
                f"fill must be in (0, 1], got {fill}"
            )
        tree = cls(order=order)
        if len(keys) == 0:
            return tree
        key_list = [int(k) for k in keys]
        if any(b <= a for a, b in zip(key_list, key_list[1:])):
            raise InvalidParameterError(
                "bulk_load requires strictly increasing keys"
            )
        per_leaf = max(2, min(order, int(order * fill)))
        leaves: List[_LeafNode] = []
        for start in range(0, len(key_list), per_leaf):
            leaf = _LeafNode(
                keys=key_list[start:start + per_leaf],
                values=list(values[start:start + per_leaf]),
            )
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
        level: List[object] = leaves
        height = 1
        while len(level) > 1:
            parents: List[object] = []
            position = 0
            while position < len(level):
                remaining = len(level) - position
                if remaining <= order:
                    take = remaining
                elif remaining == order + 1:
                    # Never leave a single orphan for the next group: an
                    # inner node needs >= 2 children.
                    take = order - 1
                else:
                    take = order
                group = level[position:position + take]
                position += take
                node = _InnerNode(
                    separators=[_smallest_key(child)
                                for child in group[1:]],
                    children=list(group),
                )
                parents.append(node)
            level = parents
            height += 1
        tree._root = level[0]
        tree._size = len(key_list)
        tree._height = height
        return tree

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        return self._order

    @property
    def height(self) -> int:
        """Levels from root to leaf, inclusive."""
        return self._height

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, key: int) -> Tuple[Optional[object], int]:
        """Look up one key.

        Returns ``(value, node_accesses)``; ``value`` is ``None`` when
        the key is absent.
        """
        key = int(key)
        node = self._root
        accesses = 1
        while not node.is_leaf:
            node = node.children[_child_position(node, key)]
            accesses += 1
        for position, leaf_key in enumerate(node.keys):
            if leaf_key == key:
                return node.values[position], accesses
        return None, accesses

    def range_search(self, lo: int, hi: int
                     ) -> Tuple[List[object], int]:
        """All values with ``lo <= key <= hi``, in key order.

        Descends to the first candidate leaf, then walks the leaf chain —
        the sequential-scan behaviour the paper's span metric models.
        Returns ``(values, node_accesses)``.
        """
        lo, hi = int(lo), int(hi)
        if lo > hi:
            raise InvalidParameterError(f"empty range: lo={lo} > hi={hi}")
        node = self._root
        accesses = 1
        while not node.is_leaf:
            node = node.children[_child_position(node, lo)]
            accesses += 1
        results: List[object] = []
        leaf: Optional[_LeafNode] = node
        while leaf is not None:
            for leaf_key, value in zip(leaf.keys, leaf.values):
                if leaf_key > hi:
                    return results, accesses
                if leaf_key >= lo:
                    results.append(value)
            leaf = leaf.next_leaf
            if leaf is not None:
                accesses += 1
        return results, accesses

    def items(self) -> Iterator[Tuple[int, object]]:
        """All ``(key, value)`` pairs in key order (leaf-chain walk)."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        leaf: Optional[_LeafNode] = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: int, value: object) -> None:
        """Insert a new key (duplicates are rejected)."""
        key = int(key)
        split = self._insert_into(self._root, key, value)
        if split is not None:
            separator, right = split
            self._root = _InnerNode(separators=[separator],
                                    children=[self._root, right])
            self._height += 1
        self._size += 1

    def _insert_into(self, node, key: int, value
                     ) -> Optional[Tuple[int, object]]:
        """Recursive insert; returns ``(separator, new_right_sibling)``
        when the child split, else ``None``."""
        if node.is_leaf:
            position = 0
            while position < len(node.keys) and node.keys[position] < key:
                position += 1
            if position < len(node.keys) and node.keys[position] == key:
                raise InvalidParameterError(f"duplicate key {key}")
            node.keys.insert(position, key)
            node.values.insert(position, value)
            if len(node.keys) <= self._order:
                return None
            return self._split_leaf(node)
        position = _child_position(node, key)
        split = self._insert_into(node.children[position], key, value)
        if split is None:
            return None
        separator, right = split
        node.separators.insert(position, separator)
        node.children.insert(position + 1, right)
        if len(node.children) <= self._order:
            return None
        return self._split_inner(node)

    def _split_leaf(self, leaf: _LeafNode) -> Tuple[int, _LeafNode]:
        middle = len(leaf.keys) // 2
        right = _LeafNode(
            keys=leaf.keys[middle:],
            values=leaf.values[middle:],
            next_leaf=leaf.next_leaf,
        )
        del leaf.keys[middle:]
        del leaf.values[middle:]
        leaf.next_leaf = right
        return right.keys[0], right

    def _split_inner(self, node: _InnerNode) -> Tuple[int, _InnerNode]:
        middle = len(node.children) // 2
        separator = node.separators[middle - 1]
        right = _InnerNode(
            separators=node.separators[middle:],
            children=node.children[middle:],
        )
        del node.separators[middle - 1:]
        del node.children[middle:]
        return separator, right

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is broken."""
        keys = [key for key, _ in self.items()]
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(set(keys)) == len(keys), "duplicate keys"
        assert len(keys) == self._size, "size counter drifted"
        self._check_node(self._root, None, None, is_root=True)

    def _check_node(self, node, lo, hi, is_root=False) -> int:
        if node.is_leaf:
            for key in node.keys:
                assert lo is None or key >= lo
                assert hi is None or key < hi
            assert len(node.keys) <= self._order
            return 1
        assert node.separators == sorted(node.separators)
        assert len(node.children) == len(node.separators) + 1
        assert 2 <= len(node.children) <= self._order
        depths = set()
        bounds = ([lo] + list(node.separators)
                  ) if lo is not None else [None] + list(node.separators)
        uppers = list(node.separators) + [hi]
        for child, child_lo, child_hi in zip(node.children, bounds,
                                             uppers):
            depths.add(self._check_node(child, child_lo, child_hi))
        assert len(depths) == 1, "leaves at different depths"
        return depths.pop() + 1

    def __repr__(self) -> str:
        return (f"BPlusTree(order={self._order}, size={self._size}, "
                f"height={self._height})")


def _smallest_key(node) -> int:
    while not node.is_leaf:
        node = node.children[0]
    return node.keys[0]

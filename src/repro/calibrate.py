"""``python -m repro.calibrate``: measure backend cutoffs per machine.

The ``auto`` eigensolver policy switches backends at two thresholds —
:data:`~repro.linalg.backends.DENSE_CUTOFF` (dense ``eigh`` vs the
iterative solvers) and :data:`~repro.linalg.backends.MULTILEVEL_CUTOFF`
(exact vs coarsen-solve-refine).  Both are hardware policy, not
algorithmic constants: the crossover moves with BLAS quality, core
count, and whether scipy is installed.  This module *measures* them on
the current machine by timing a small bench grid and writes the result
as an env file::

    python -m repro.calibrate --out repro-cutoffs.env
    set -a; . repro-cutoffs.env; set +a        # apply to a shell

The file contains ``REPRO_DENSE_CUTOFF`` / ``REPRO_MULTILEVEL_CUTOFF``
assignments (the exact variables
:func:`~repro.linalg.backends.cutoff_from_env` validates at import)
plus a comment block recording the measurements behind them, so a value
can be audited later.

Methodology: square grids of increasing side are ordered once per
backend (best of ``--repeats``); a cutoff is placed at the largest
measured size where the cheaper-small backend still won.  When the
expensive-small backend never wins inside the measured range, the
current default is kept rather than extrapolated — a calibration that
never observed a crossover has no business inventing one.
"""

from __future__ import annotations

import argparse
import platform
import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.fiedler import fiedler_vector
from repro.geometry.grid import Grid
from repro.graph.builders import grid_graph
from repro.linalg.backends import (
    DENSE_CUTOFF,
    MULTILEVEL_CUTOFF,
    scipy_available,
)
from repro.obs import best_of

#: Grid sides timed for the dense-vs-iterative crossover.
DENSE_SIDES = (16, 24, 32, 48, 64)
#: Grid sides timed for the exact-vs-multilevel crossover.
MULTILEVEL_SIDES = (32, 48, 64, 96)
#: Reduced ladders for ``--quick`` (CI smoke and tests).
QUICK_DENSE_SIDES = (8, 12, 16)
QUICK_MULTILEVEL_SIDES = (16, 24)


@dataclass(frozen=True)
class Measurement:
    """Best-of-N seconds for both backends at one problem size."""

    n: int
    cheap_s: float      # the backend preferred below the cutoff
    expensive_s: float  # the backend preferred above it


@dataclass(frozen=True)
class CalibrationResult:
    """The measured cutoffs plus everything behind them."""

    dense_cutoff: int
    multilevel_cutoff: int
    iterative_backend: str
    dense_measurements: Tuple[Measurement, ...]
    multilevel_measurements: Tuple[Measurement, ...]
    dense_crossed: bool
    multilevel_crossed: bool


def _time_backends(sides: Sequence[int], small_backend: str,
                   large_backend: str, repeats: int) -> List[Measurement]:
    repeats = max(1, repeats)
    measurements = []
    for side in sides:
        graph = grid_graph(Grid((side, side)))
        small = best_of(
            lambda: fiedler_vector(graph, backend=small_backend), repeats)
        large = best_of(
            lambda: fiedler_vector(graph, backend=large_backend), repeats)
        measurements.append(Measurement(n=graph.num_vertices,
                                        cheap_s=small, expensive_s=large))
    return measurements


def _largest_cheap_win(measurements: Sequence[Measurement],
                       fallback: int) -> Tuple[int, bool]:
    """The largest n where the cheap-small backend won, and whether the
    expensive backend ever took over inside the measured range."""
    wins = [m.n for m in measurements if m.cheap_s <= m.expensive_s]
    crossed = any(m.cheap_s > m.expensive_s for m in measurements)
    if not wins:
        return fallback, crossed
    return max(wins), crossed


def calibrate(quick: bool = False, repeats: int = 3) -> CalibrationResult:
    """Run the bench grid and derive both cutoffs.

    ``quick`` shrinks the grid ladder to a few-second run (used by the
    CI smoke test); production calibration should run the default
    ladder on an otherwise idle machine.
    """
    iterative = "scipy" if scipy_available() else "lanczos"
    dense_sides = QUICK_DENSE_SIDES if quick else DENSE_SIDES
    ml_sides = QUICK_MULTILEVEL_SIDES if quick else MULTILEVEL_SIDES

    dense_ms = _time_backends(dense_sides, "dense", iterative, repeats)
    # Dense wins while n is small; the cutoff is the last size it held.
    dense_cutoff, dense_crossed = _largest_cheap_win(
        dense_ms, fallback=min(m.n for m in dense_ms))
    if not dense_crossed:
        # Dense never lost in range: the crossover lies above the
        # measured ladder, so never *lower* the shipped default — only
        # raise it when the measurements prove dense holds further.
        dense_cutoff = max(DENSE_CUTOFF, max(m.n for m in dense_ms))

    exact = ("dense" if max(ml_sides) ** 2 <= DENSE_CUTOFF else iterative)
    ml_ms = _time_backends(ml_sides, exact, "multilevel", repeats)
    ml_cutoff, ml_crossed = _largest_cheap_win(
        ml_ms, fallback=MULTILEVEL_CUTOFF)
    if not ml_crossed:
        # No observed size where the approximation paid off: keep the
        # conservative default instead of extrapolating.
        ml_cutoff = MULTILEVEL_CUTOFF

    return CalibrationResult(
        dense_cutoff=int(dense_cutoff),
        multilevel_cutoff=int(ml_cutoff),
        iterative_backend=iterative,
        dense_measurements=tuple(dense_ms),
        multilevel_measurements=tuple(ml_ms),
        dense_crossed=dense_crossed,
        multilevel_crossed=ml_crossed,
    )


def render_env_file(result: CalibrationResult) -> str:
    """The env-file text for a calibration result (with audit trail)."""
    lines = [
        "# Eigensolver backend cutoffs measured by "
        "`python -m repro.calibrate`.",
        f"# host: {platform.node() or 'unknown'} "
        f"({platform.machine()}), python {platform.python_version()}, "
        f"iterative backend: {result.iterative_backend}",
        "#",
        "# dense vs iterative (seconds, best-of-N):",
    ]
    for m in result.dense_measurements:
        lines.append(f"#   n={m.n:>7d}  dense={m.cheap_s:.4f}  "
                     f"{result.iterative_backend}={m.expensive_s:.4f}")
    if not result.dense_crossed:
        lines.append("#   (no crossover observed; keeping at least the "
                     "default dense cutoff)")
    lines.append("# exact vs multilevel:")
    for m in result.multilevel_measurements:
        lines.append(f"#   n={m.n:>7d}  exact={m.cheap_s:.4f}  "
                     f"multilevel={m.expensive_s:.4f}")
    if not result.multilevel_crossed:
        lines.append("#   (no crossover observed; keeping the default "
                     "multilevel cutoff)")
    lines.append(f"REPRO_DENSE_CUTOFF={result.dense_cutoff}")
    lines.append(f"REPRO_MULTILEVEL_CUTOFF={result.multilevel_cutoff}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.calibrate``."""
    parser = argparse.ArgumentParser(
        prog="repro-calibrate",
        description="Measure REPRO_DENSE_CUTOFF / "
                    "REPRO_MULTILEVEL_CUTOFF for this machine and write "
                    "them to an env file.",
    )
    parser.add_argument("--out", default="repro-cutoffs.env",
                        metavar="PATH",
                        help="env file to write (default: "
                             "repro-cutoffs.env)")
    parser.add_argument("--quick", action="store_true",
                        help="small grid ladder (seconds, less precise)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per point (best-of)")
    args = parser.parse_args(argv)

    result = calibrate(quick=args.quick, repeats=args.repeats)
    text = render_env_file(result)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(text.rstrip())
    print(f"\nwrote {args.out}; apply with: set -a; . {args.out}; set +a")
    return 0


if __name__ == "__main__":
    sys.exit(main())

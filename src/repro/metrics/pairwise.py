"""Pairwise locality metrics (the paper's Figure-5a family).

The question these metrics answer, quoting Section 5: *"If the Manhattan
distance between any two points in the multi-dimensional space is MD, what
is the distance OD between the same two points in the one-dimensional
space?"*  The 1-D distance between two cells is the absolute difference of
their ranks; lower is better for nearest-neighbour queries.

:func:`rank_distance_profile` aggregates |rank_i - rank_j| over every cell
pair, bucketed by exact Manhattan distance, in O(n^2) time but fully
vectorized and chunked so five-dimensional grids with tens of thousands of
cells are practical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionError, InvalidParameterError
from repro.geometry.grid import Grid


@dataclass(frozen=True)
class DistanceProfile:
    """Aggregates of 1-D rank distance per Manhattan-distance class.

    ``distances[k]`` is the Manhattan distance of class ``k``;
    ``max_rank_distance`` / ``mean_rank_distance`` / ``pair_count`` are
    aligned with it.
    """

    distances: np.ndarray
    max_rank_distance: np.ndarray
    mean_rank_distance: np.ndarray
    pair_count: np.ndarray

    def at(self, distance: int) -> tuple[int, float]:
        """``(max, mean)`` rank distance at one Manhattan distance."""
        matches = np.flatnonzero(self.distances == distance)
        if len(matches) == 0:
            raise InvalidParameterError(
                f"no pairs at Manhattan distance {distance}"
            )
        k = matches[0]
        return int(self.max_rank_distance[k]), float(
            self.mean_rank_distance[k]
        )


def _validate_ranks(grid: Grid, ranks: np.ndarray) -> np.ndarray:
    ranks = np.asarray(ranks)
    if ranks.shape != (grid.size,):
        raise DimensionError(
            f"ranks must have shape ({grid.size},), got {ranks.shape}"
        )
    return ranks.astype(np.int64)


def rank_distance_profile(grid: Grid, ranks: np.ndarray,
                          chunk: int = 512) -> DistanceProfile:
    """Max/mean 1-D rank distance per exact Manhattan distance class.

    Iterates all unordered cell pairs in row chunks; memory is
    ``O(chunk * n)``.
    """
    ranks = _validate_ranks(grid, ranks)
    if chunk < 1:
        raise InvalidParameterError(f"chunk must be >= 1, got {chunk}")
    coords = grid.coordinates().astype(np.int32)
    n = grid.size
    dmax = grid.max_manhattan
    max_acc = np.zeros(dmax + 1, dtype=np.int64)
    sum_acc = np.zeros(dmax + 1, dtype=np.float64)
    cnt_acc = np.zeros(dmax + 1, dtype=np.int64)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = coords[start:stop]                     # (b, d)
        manhattan = np.abs(
            block[:, None, :] - coords[None, :, :]
        ).sum(axis=2)                                   # (b, n)
        rank_diff = np.abs(ranks[start:stop, None] - ranks[None, :])
        # Keep each unordered pair once: j > i.
        cols = np.arange(n)[None, :]
        rows = np.arange(start, stop)[:, None]
        keep = cols > rows
        md = manhattan[keep]
        rd = rank_diff[keep]
        np.maximum.at(max_acc, md, rd)
        np.add.at(sum_acc, md, rd)
        np.add.at(cnt_acc, md, 1)
    present = np.flatnonzero(cnt_acc)
    mean = np.zeros_like(sum_acc)
    mean[present] = sum_acc[present] / cnt_acc[present]
    return DistanceProfile(
        distances=present,
        max_rank_distance=max_acc[present],
        mean_rank_distance=mean[present],
        pair_count=cnt_acc[present],
    )


def adjacent_gap_stats(grid: Grid, ranks: np.ndarray) -> tuple[int, float]:
    """``(max, mean)`` rank distance over Manhattan-distance-1 pairs.

    The boundary effect in one number: a mapping with a large max here has
    spatially adjacent cells that are far apart on disk.
    """
    ranks = _validate_ranks(grid, ranks)
    gaps = []
    for axis in range(grid.ndim):
        stride = grid.strides[axis]
        coords = grid.coordinates()
        left = np.flatnonzero(coords[:, axis] + 1 < grid.shape[axis])
        right = left + stride
        gaps.append(np.abs(ranks[left] - ranks[right]))
    all_gaps = np.concatenate(gaps)
    return int(all_gaps.max()), float(all_gaps.mean())


def boundary_gap(grid: Grid, ranks: np.ndarray, axis: int,
                 split: int | None = None) -> int:
    """Max rank gap between adjacent cells straddling a boundary plane.

    The paper's Figure 1 places ``P1`` and ``P2`` in different quadrants:
    this metric generalizes that construction — it considers pairs of
    cells adjacent across the hyper-plane ``axis = split`` (default: the
    midpoint) and returns the worst 1-D separation among them.
    """
    ranks = _validate_ranks(grid, ranks)
    if not 0 <= axis < grid.ndim:
        raise InvalidParameterError(
            f"axis {axis} out of range for {grid.ndim}-d grid"
        )
    side = grid.shape[axis]
    if split is None:
        split = side // 2
    if not 1 <= split < side:
        raise InvalidParameterError(
            f"split must be in [1, {side - 1}], got {split}"
        )
    coords = grid.coordinates()
    stride = grid.strides[axis]
    left = np.flatnonzero(coords[:, axis] == split - 1)
    right = left + stride
    return int(np.abs(ranks[left] - ranks[right]).max())


def distances_for_percentages(grid: Grid,
                              percents: np.ndarray) -> np.ndarray:
    """Manhattan distances closest to the given percents of the maximum.

    The paper's x-axes express pair distance as a percentage of the
    maximum possible Manhattan distance; this resolves those percentages
    to concrete integer distances (at least 1).
    """
    percents = np.asarray(percents, dtype=np.float64)
    dmax = grid.max_manhattan
    distances = np.rint(percents / 100.0 * dmax).astype(np.int64)
    return np.maximum(distances, 1)

"""Locality metrics: everything Section 5 measures, and then some."""

from repro.metrics.arrangement import (
    ArrangementCosts,
    arrangement_costs,
    bandwidth,
    cutwidth,
    one_sum,
    two_sum,
)
from repro.metrics.clustering import (
    ClusterStats,
    box_cluster_count,
    cluster_count,
    cluster_stats,
)
from repro.metrics.fairness import (
    FairnessSummary,
    axis_profile,
    axis_rank_distance,
    fairness_summary,
)
from repro.metrics.pairwise import (
    DistanceProfile,
    adjacent_gap_stats,
    boundary_gap,
    distances_for_percentages,
    rank_distance_profile,
)
from repro.metrics.range_span import (
    SpanStats,
    box_span,
    partial_match_span_stats,
    span_field,
    span_stats,
)

__all__ = [
    "ArrangementCosts",
    "ClusterStats",
    "DistanceProfile",
    "FairnessSummary",
    "SpanStats",
    "adjacent_gap_stats",
    "arrangement_costs",
    "axis_profile",
    "axis_rank_distance",
    "bandwidth",
    "boundary_gap",
    "box_cluster_count",
    "box_span",
    "cluster_count",
    "cluster_stats",
    "cutwidth",
    "distances_for_percentages",
    "fairness_summary",
    "one_sum",
    "partial_match_span_stats",
    "rank_distance_profile",
    "span_field",
    "span_stats",
    "two_sum",
]

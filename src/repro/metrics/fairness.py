"""Per-dimension fairness metrics (the paper's Figure 5b).

Figure 5b measures "the Manhattan distance over only one dimension": take
pairs of cells that differ by ``delta`` along a single axis (and agree on
all others) and ask how far apart their ranks are.  A *fair* mapping
treats every axis alike — Sweep is maximally unfair (its fast axis costs
``delta``, its slow axis ``delta * row_length``) while the spectral order
is near-symmetric by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DimensionError, InvalidParameterError
from repro.geometry.grid import Grid, pairs_along_axis


def axis_rank_distance(grid: Grid, ranks: np.ndarray, axis: int,
                       delta: int, agg: str = "max") -> float:
    """Aggregate rank distance over pairs separated by ``delta`` on ``axis``.

    ``agg`` is ``"max"`` (the figure's statistic) or ``"mean"``.
    """
    ranks = np.asarray(ranks)
    if ranks.shape != (grid.size,):
        raise DimensionError(
            f"ranks must have shape ({grid.size},), got {ranks.shape}"
        )
    left, right = pairs_along_axis(grid, axis, delta)
    gaps = np.abs(ranks[left].astype(np.int64) - ranks[right])
    if agg == "max":
        return float(gaps.max())
    if agg == "mean":
        return float(gaps.mean())
    raise InvalidParameterError(
        f"agg must be 'max' or 'mean', got {agg!r}"
    )


def axis_profile(grid: Grid, ranks: np.ndarray, axis: int,
                 deltas: Sequence[int], agg: str = "max") -> np.ndarray:
    """:func:`axis_rank_distance` over a sequence of deltas."""
    return np.array([
        axis_rank_distance(grid, ranks, axis, int(d), agg=agg)
        for d in deltas
    ])


@dataclass(frozen=True)
class FairnessSummary:
    """How evenly a mapping treats the axes at a fixed separation.

    ``per_axis[k]`` is the aggregate rank distance along axis ``k``;
    ``spread`` is ``max - min`` across axes and ``ratio`` is
    ``max / min`` (1.0 = perfectly fair).
    """

    delta: int
    per_axis: np.ndarray
    spread: float
    ratio: float


def fairness_summary(grid: Grid, ranks: np.ndarray, delta: int,
                     agg: str = "max") -> FairnessSummary:
    """Axis-by-axis rank distances at one separation, with spread stats."""
    per_axis = np.array([
        axis_rank_distance(grid, ranks, axis, delta, agg=agg)
        for axis in range(grid.ndim)
    ])
    low = float(per_axis.min())
    high = float(per_axis.max())
    ratio = float("inf") if low == 0 else high / low
    return FairnessSummary(delta=delta, per_axis=per_axis,
                           spread=high - low, ratio=ratio)

"""Cluster-count metrics (Moon, Jagadish, Faloutsos & Salz, TKDE 2001).

The paper's reference [4] measures curve quality by the *number of
clusters* a range query decomposes into: maximal runs of consecutive
ranks among the cells inside the query.  Each cluster is one contiguous
read (one disk seek), so the average cluster count per query directly
estimates I/O seek cost — a complementary statistic to the span metric of
Figure 6 (span bounds the sweep length, clusters count the seeks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import DimensionError
from repro.geometry.boxes import Box, boxes_with_extent
from repro.geometry.grid import Grid


def cluster_count(ranks_in_query: np.ndarray) -> int:
    """Number of maximal consecutive-rank runs among the given ranks."""
    ranks = np.asarray(ranks_in_query, dtype=np.int64)
    if ranks.size == 0:
        return 0
    ordered = np.sort(ranks)
    breaks = np.count_nonzero(np.diff(ordered) > 1)
    return int(breaks + 1)


def box_cluster_count(grid: Grid, ranks: np.ndarray, box: Box) -> int:
    """Cluster count of one query box."""
    ranks = np.asarray(ranks)
    return cluster_count(ranks[box.cell_indices(grid)])


@dataclass(frozen=True)
class ClusterStats:
    """Cluster-count summary over all placements of one query extent."""

    extent: Tuple[int, ...]
    query_count: int
    max: int
    mean: float
    std: float


def cluster_stats(grid: Grid, ranks: np.ndarray,
                  extent: Sequence[int]) -> ClusterStats:
    """Cluster counts over every placement of an ``extent`` box.

    Unlike spans, cluster counts are not separable across axes, so each
    placement is evaluated individually; the cells of each box are
    gathered with one vectorized index computation.
    """
    ranks = np.asarray(ranks)
    if ranks.shape != (grid.size,):
        raise DimensionError(
            f"ranks must have shape ({grid.size},), got {ranks.shape}"
        )
    counts = [
        cluster_count(ranks[box.cell_indices(grid)])
        for box in boxes_with_extent(grid, extent)
    ]
    counts_arr = np.array(counts, dtype=np.int64)
    return ClusterStats(
        extent=tuple(int(e) for e in extent),
        query_count=len(counts_arr),
        max=int(counts_arr.max()),
        mean=float(counts_arr.mean()),
        std=float(counts_arr.std()),
    )

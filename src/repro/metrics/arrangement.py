"""Linear-arrangement objectives.

The paper's Theorem 1 casts locality preservation as a quadratic
arrangement problem: minimize ``sum over edges (x_u - x_v)^2`` subject to
normalization.  The Fiedler vector solves the *continuous relaxation*;
the discrete order obtained by sorting it is a (good) heuristic for the
integer problem.  These metrics evaluate any discrete order against the
classic arrangement objectives, so spectral and fractal orders can be
compared on the exact quantity the paper optimizes:

* ``two_sum`` — ``sum w (r_u - r_v)^2`` (the discrete Theorem-1 objective)
* ``one_sum`` — ``sum w |r_u - r_v|`` (Minimum Linear Arrangement)
* ``bandwidth`` — ``max |r_u - r_v|`` (worst single edge)
* ``cutwidth`` — max number of edges crossing a gap in the order
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ordering import LinearOrder
from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph


def _edge_rank_diffs(graph: Graph,
                     order: LinearOrder) -> tuple[np.ndarray, np.ndarray]:
    if order.n != graph.num_vertices:
        raise InvalidParameterError(
            f"order covers {order.n} items, graph has "
            f"{graph.num_vertices} vertices"
        )
    u, v, w = graph.edge_arrays()
    diffs = np.abs(order.ranks[u] - order.ranks[v])
    return diffs, w


def two_sum(graph: Graph, order: LinearOrder) -> float:
    """Discrete quadratic arrangement cost ``sum w (r_u - r_v)^2``."""
    diffs, w = _edge_rank_diffs(graph, order)
    return float((w * diffs.astype(np.float64) ** 2).sum())


def one_sum(graph: Graph, order: LinearOrder) -> float:
    """Minimum-linear-arrangement cost ``sum w |r_u - r_v|``."""
    diffs, w = _edge_rank_diffs(graph, order)
    return float((w * diffs).sum())


def bandwidth(graph: Graph, order: LinearOrder) -> int:
    """Largest rank stretch of any edge."""
    diffs, _ = _edge_rank_diffs(graph, order)
    return int(diffs.max()) if len(diffs) else 0


def cutwidth(graph: Graph, order: LinearOrder) -> int:
    """Max edges crossing any gap between consecutive ranks.

    An edge ``(u, v)`` crosses gap ``t`` (between ranks ``t`` and
    ``t + 1``) when ``min(r) <= t < max(r)``.  Computed with a sweep:
    +1 at each edge's low rank, -1 at its high rank, prefix-summed.
    """
    if order.n != graph.num_vertices:
        raise InvalidParameterError(
            f"order covers {order.n} items, graph has "
            f"{graph.num_vertices} vertices"
        )
    u, v, _ = graph.edge_arrays()
    if len(u) == 0 or order.n < 2:
        return 0
    lo = np.minimum(order.ranks[u], order.ranks[v])
    hi = np.maximum(order.ranks[u], order.ranks[v])
    delta = np.zeros(order.n, dtype=np.int64)
    np.add.at(delta, lo, 1)
    np.subtract.at(delta, hi, 1)
    return int(delta.cumsum()[:-1].max())


@dataclass(frozen=True)
class ArrangementCosts:
    """All four arrangement objectives of one order on one graph."""

    two_sum: float
    one_sum: float
    bandwidth: int
    cutwidth: int


def arrangement_costs(graph: Graph, order: LinearOrder) -> ArrangementCosts:
    """Evaluate every arrangement objective at once."""
    return ArrangementCosts(
        two_sum=two_sum(graph, order),
        one_sum=one_sum(graph, order),
        bandwidth=bandwidth(graph, order),
        cutwidth=cutwidth(graph, order),
    )

"""Range-query span metrics (the paper's Figure 6).

For a range query — an axis-aligned box of cells — look at the ranks of
the cells inside it.  The paper's statistic is the *span*: the difference
between the largest and smallest rank.  A mapping with a small span lets
the query be answered with one short sequential sweep of the linear
storage (skipping the few interlopers); a large span forces the sweep to
cover almost the whole file.

Figure 6a reports the **max** span over all placements of a given query
size (worst case); Figure 6b reports the **standard deviation** over all
placements (fairness: does the cost depend on where the query lands?).

Spans for *all* placements of one extent are computed at once with
separable sliding-window min/max over the rank grid — O(n * extent) per
axis rather than O(n * volume).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import DimensionError, DomainError, InvalidParameterError
from repro.geometry.boxes import Box
from repro.geometry.grid import Grid


def _validate(grid: Grid, ranks: np.ndarray,
              extent: Sequence[int]) -> Tuple[np.ndarray, Tuple[int, ...]]:
    ranks = np.asarray(ranks)
    if ranks.shape != (grid.size,):
        raise DimensionError(
            f"ranks must have shape ({grid.size},), got {ranks.shape}"
        )
    extent = tuple(int(e) for e in extent)
    if len(extent) != grid.ndim:
        raise DimensionError(
            f"extent has {len(extent)} axes, grid has {grid.ndim}"
        )
    if any(e < 1 for e in extent):
        raise InvalidParameterError(f"extents must be >= 1, got {extent}")
    if any(e > s for e, s in zip(extent, grid.shape)):
        raise DomainError(
            f"extent {extent} exceeds grid shape {grid.shape}"
        )
    return ranks.astype(np.int64), extent


def _sliding_extremum(array: np.ndarray, window: int, axis: int,
                      largest: bool) -> np.ndarray:
    """Sliding max (or min) along one axis, window fully inside."""
    if window == 1:
        return array
    view = np.lib.stride_tricks.sliding_window_view(array, window,
                                                    axis=axis)
    return view.max(axis=-1) if largest else view.min(axis=-1)


def span_field(grid: Grid, ranks: np.ndarray,
               extent: Sequence[int]) -> np.ndarray:
    """Span of every placement of an ``extent`` box.

    Returns an array of shape ``(shape[0]-e0+1, ..., shape[d-1]-ed+1)``:
    entry at index ``origin`` is ``max(ranks in box) - min(ranks in box)``
    for the box at that origin.
    """
    ranks, extent = _validate(grid, ranks, extent)
    rank_grid = ranks.reshape(grid.shape)
    highs = rank_grid
    lows = rank_grid
    for axis, window in enumerate(extent):
        highs = _sliding_extremum(highs, window, axis, largest=True)
        lows = _sliding_extremum(lows, window, axis, largest=False)
    return highs - lows


@dataclass(frozen=True)
class SpanStats:
    """Summary of spans over all placements of one query extent."""

    extent: Tuple[int, ...]
    volume: int
    query_count: int
    max: int
    mean: float
    std: float
    min: int

    @classmethod
    def from_field(cls, extent: Tuple[int, ...],
                   field: np.ndarray) -> "SpanStats":
        volume = 1
        for e in extent:
            volume *= e
        return cls(
            extent=extent,
            volume=volume,
            query_count=int(field.size),
            max=int(field.max()),
            mean=float(field.mean()),
            std=float(field.std()),
            min=int(field.min()),
        )


def span_stats(grid: Grid, ranks: np.ndarray,
               extent: Sequence[int]) -> SpanStats:
    """Span statistics over every placement of an ``extent`` box."""
    field = span_field(grid, ranks, extent)
    return SpanStats.from_field(tuple(int(e) for e in extent), field)


def box_span(grid: Grid, ranks: np.ndarray, box: Box) -> int:
    """Span of a single query box."""
    ranks = np.asarray(ranks)
    cells = box.cell_indices(grid)
    selected = ranks[cells]
    return int(selected.max() - selected.min())


def partial_match_span_stats(grid: Grid, ranks: np.ndarray,
                             fixed_axes: Sequence[int],
                             extent: int) -> SpanStats:
    """Span statistics over partial-match queries.

    A partial-match query constrains each axis in ``fixed_axes`` to an
    interval of length ``extent`` and leaves the other axes unrestricted
    — the "partial range queries" of the paper's Figure-6b description.
    """
    fixed = set(int(a) for a in fixed_axes)
    if not fixed:
        raise InvalidParameterError("at least one axis must be constrained")
    if min(fixed) < 0 or max(fixed) >= grid.ndim:
        raise InvalidParameterError(
            f"fixed_axes {sorted(fixed)} out of range for "
            f"{grid.ndim}-d grid"
        )
    full_extent = tuple(
        extent if axis in fixed else grid.shape[axis]
        for axis in range(grid.ndim)
    )
    return span_stats(grid, ranks, full_extent)

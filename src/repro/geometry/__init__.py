"""Discrete geometry substrate: grid domains, boxes, and metrics."""

from repro.geometry.boxes import (
    Box,
    boxes_with_extent,
    count_boxes_with_extent,
    extent_for_volume_fraction,
    partial_match_boxes,
)
from repro.geometry.grid import CONNECTIVITIES, Grid, pairs_along_axis
from repro.geometry.pointset import PointSet

__all__ = [
    "Box",
    "CONNECTIVITIES",
    "Grid",
    "PointSet",
    "boxes_with_extent",
    "count_boxes_with_extent",
    "extent_for_volume_fraction",
    "pairs_along_axis",
    "partial_match_boxes",
]

"""Axis-aligned boxes (hyper-rectangles) over grid domains.

Boxes are the range-query shape of the paper's Figure-6 experiments: a
query is the set of grid cells inside a box, and the quality of a mapping
is judged by how compact the 1-D images of those cells are.

A :class:`Box` stores *inclusive* integer corner coordinates ``lo`` and
``hi``; the box contains every cell ``p`` with ``lo[i] <= p[i] <= hi[i]``.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError, DomainError, InvalidParameterError
from repro.geometry.grid import Grid, Point


class Box:
    """An axis-aligned box with inclusive corners ``lo`` and ``hi``."""

    __slots__ = ("_lo", "_hi")

    def __init__(self, lo: Sequence[int], hi: Sequence[int]):
        lo = tuple(int(c) for c in lo)
        hi = tuple(int(c) for c in hi)
        if len(lo) != len(hi):
            raise DimensionError(
                f"corners have different dimensionality: {len(lo)} vs {len(hi)}"
            )
        if len(lo) == 0:
            raise InvalidParameterError("a box needs at least one dimension")
        if any(a > b for a, b in zip(lo, hi)):
            raise InvalidParameterError(
                f"box corners are inverted: lo={lo}, hi={hi}"
            )
        self._lo = lo
        self._hi = hi

    @classmethod
    def from_origin_extent(cls, origin: Sequence[int],
                           extent: Sequence[int]) -> "Box":
        """Box with corner ``origin`` and per-axis side lengths ``extent``."""
        origin = tuple(int(c) for c in origin)
        extent = tuple(int(e) for e in extent)
        if any(e <= 0 for e in extent):
            raise InvalidParameterError(
                f"extents must be positive, got {extent}"
            )
        hi = tuple(o + e - 1 for o, e in zip(origin, extent))
        return cls(origin, hi)

    # ------------------------------------------------------------------
    @property
    def lo(self) -> Point:
        return self._lo

    @property
    def hi(self) -> Point:
        return self._hi

    @property
    def ndim(self) -> int:
        return len(self._lo)

    @property
    def extent(self) -> Tuple[int, ...]:
        """Per-axis side length (number of cells)."""
        return tuple(b - a + 1 for a, b in zip(self._lo, self._hi))

    @property
    def volume(self) -> int:
        """Number of cells inside the box."""
        vol = 1
        for e in self.extent:
            vol *= e
        return vol

    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[int]) -> bool:
        if len(point) != self.ndim:
            raise DimensionError(
                f"point has {len(point)} coordinates, box has {self.ndim}"
            )
        return all(a <= int(c) <= b
                   for c, a, b in zip(point, self._lo, self._hi))

    def contains_box(self, other: "Box") -> bool:
        self._check_same_ndim(other)
        return (all(a <= c for a, c in zip(self._lo, other._lo))
                and all(b >= c for b, c in zip(self._hi, other._hi)))

    def intersects(self, other: "Box") -> bool:
        self._check_same_ndim(other)
        return all(a <= d and c <= b
                   for a, b, c, d in zip(self._lo, self._hi,
                                         other._lo, other._hi))

    def intersection(self, other: "Box") -> Optional["Box"]:
        """The overlapping box, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        lo = tuple(max(a, c) for a, c in zip(self._lo, other._lo))
        hi = tuple(min(b, d) for b, d in zip(self._hi, other._hi))
        return Box(lo, hi)

    def _check_same_ndim(self, other: "Box") -> None:
        if other.ndim != self.ndim:
            raise DimensionError(
                f"boxes have different dimensionality: "
                f"{self.ndim} vs {other.ndim}"
            )

    # ------------------------------------------------------------------
    def cells(self) -> Iterator[Point]:
        """All cells inside the box, in row-major order."""
        ranges = [range(a, b + 1) for a, b in zip(self._lo, self._hi)]
        return itertools.product(*ranges)

    def cell_indices(self, grid: Grid) -> np.ndarray:
        """Flat (row-major) grid indices of every cell inside the box."""
        if grid.ndim != self.ndim:
            raise DimensionError(
                f"box is {self.ndim}-d but grid is {grid.ndim}-d"
            )
        if any(a < 0 for a in self._lo) or any(
                b >= s for b, s in zip(self._hi, grid.shape)):
            raise DomainError(
                f"box {self!r} not contained in grid of shape {grid.shape}"
            )
        axes = [np.arange(a, b + 1) for a, b in zip(self._lo, self._hi)]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.ravel_multi_index(tuple(m.ravel() for m in mesh),
                                    grid.shape)

    def clipped_to(self, grid: Grid) -> Optional["Box"]:
        """The part of the box inside ``grid``, or ``None`` if disjoint."""
        domain = Box(
            (0,) * grid.ndim, tuple(s - 1 for s in grid.shape)
        )
        return self.intersection(domain)

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (isinstance(other, Box)
                and other._lo == self._lo and other._hi == self._hi)

    def __hash__(self) -> int:
        return hash(("Box", self._lo, self._hi))

    def __repr__(self) -> str:
        return f"Box(lo={self._lo}, hi={self._hi})"


# ----------------------------------------------------------------------
# Box family generators
# ----------------------------------------------------------------------
def boxes_with_extent(grid: Grid, extent: Sequence[int]) -> Iterator[Box]:
    """Every placement of a box of the given per-axis extent inside ``grid``.

    This is the exhaustive query family of the paper's Figure 6 ("all
    possible ... range queries with a certain size").
    """
    extent = tuple(int(e) for e in extent)
    if len(extent) != grid.ndim:
        raise DimensionError(
            f"extent has {len(extent)} axes, grid has {grid.ndim}"
        )
    if any(e <= 0 for e in extent):
        raise InvalidParameterError(f"extents must be positive, got {extent}")
    if any(e > s for e, s in zip(extent, grid.shape)):
        raise DomainError(
            f"extent {extent} does not fit in grid of shape {grid.shape}"
        )
    origins = [range(s - e + 1) for s, e in zip(grid.shape, extent)]
    for origin in itertools.product(*origins):
        yield Box.from_origin_extent(origin, extent)


def count_boxes_with_extent(grid: Grid, extent: Sequence[int]) -> int:
    """Number of boxes :func:`boxes_with_extent` would yield."""
    extent = tuple(int(e) for e in extent)
    count = 1
    for s, e in zip(grid.shape, extent):
        if e <= 0 or e > s:
            raise InvalidParameterError(
                f"extent {extent} invalid for grid shape {grid.shape}"
            )
        count *= s - e + 1
    return count


def extent_for_volume_fraction(grid: Grid, fraction: float) -> Tuple[int, ...]:
    """Per-axis extent of a near-cubic box covering ``fraction`` of the grid.

    The paper parameterizes range queries by "size (percent)"; we realize
    a query of size ``fraction`` as the most-cubic integer box whose
    volume is as close as possible to ``fraction * grid.size``: start
    from the floor of the ideal cubic side per axis, then greedily grow
    one axis at a time (the axis whose growth lands the volume closest to
    the target; ties to the lowest axis index) while that improves the
    fit.  Deterministic, and distinct size fractions yield distinct
    extents wherever integer geometry allows.
    """
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(
            f"fraction must be in (0, 1], got {fraction}"
        )
    target = fraction * grid.size
    side_scale = fraction ** (1.0 / grid.ndim)
    extent = [max(1, min(s, int(s * side_scale)))
              for s in grid.shape]

    def volume(e):
        v = 1
        for x in e:
            v *= x
        return v

    while True:
        best_axis = -1
        best_error = abs(volume(extent) - target)
        for axis in range(grid.ndim):
            if extent[axis] >= grid.shape[axis]:
                continue
            grown = extent.copy()
            grown[axis] += 1
            error = abs(volume(grown) - target)
            if error < best_error:
                best_error = error
                best_axis = axis
        if best_axis < 0:
            return tuple(extent)
        extent[best_axis] += 1


def partial_match_boxes(grid: Grid, fixed_axes: Sequence[int],
                        extent: int) -> Iterator[Box]:
    """Partial-match range queries: constrain a subset of axes only.

    A *partial range query* fixes an interval of length ``extent`` on each
    axis in ``fixed_axes`` and spans the full domain on every other axis.
    Figure 6b aggregates over "all possible partial range queries with a
    certain size and dimensionality"; this generator enumerates them for
    one choice of constrained axes.
    """
    fixed = sorted(set(int(a) for a in fixed_axes))
    if not fixed:
        raise InvalidParameterError("at least one axis must be constrained")
    if fixed[0] < 0 or fixed[-1] >= grid.ndim:
        raise InvalidParameterError(
            f"fixed_axes {fixed} out of range for {grid.ndim}-d grid"
        )
    full_extent = []
    for axis, s in enumerate(grid.shape):
        if axis in fixed:
            if extent <= 0 or extent > s:
                raise InvalidParameterError(
                    f"extent {extent} invalid for axis {axis} of length {s}"
                )
            full_extent.append(extent)
        else:
            full_extent.append(s)
    yield from boxes_with_extent(grid, full_extent)

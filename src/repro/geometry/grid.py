"""Finite d-dimensional grid domains.

A :class:`Grid` is the discrete domain every mapping in this library is
defined over: the set of integer lattice points
``[0, shape[0]) x ... x [0, shape[d-1])``.  Cells are identified either by
their coordinate tuple or by their *row-major flat index* (C order: the
last axis varies fastest), matching numpy's ``ravel``/``unravel`` layout.

The paper maps "a set of multi-dimensional points" — in its experiments the
point set is always a full grid, so the grid is the canonical domain here.
Sparse point sets are handled by the graph builders
(:mod:`repro.graph.builders`), which accept arbitrary coordinate arrays.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError, DomainError, InvalidParameterError

Point = Tuple[int, ...]

#: Neighborhood styles accepted by :meth:`Grid.neighbors`.
#: ``"orthogonal"`` is the d-dimensional generalization of 4-connectivity
#: (2d neighbours at Manhattan distance 1); ``"moore"`` generalizes
#: 8-connectivity (the 3^d - 1 cells at Chebyshev distance 1).
CONNECTIVITIES = ("orthogonal", "moore")


def _normalize_connectivity(connectivity) -> str:
    """Map user-facing connectivity spellings onto canonical names.

    The integers 4 and 8 are accepted for 2-D familiarity and mean
    "orthogonal" and "moore" in any dimension.
    """
    if connectivity in (4, "4", "orthogonal"):
        return "orthogonal"
    if connectivity in (8, "8", "moore"):
        return "moore"
    raise InvalidParameterError(
        f"unknown connectivity {connectivity!r}; "
        f"expected one of {CONNECTIVITIES} or the aliases 4 / 8"
    )


class Grid:
    """A finite d-dimensional grid ``[0, shape[0]) x ... x [0, shape[d-1])``.

    Parameters
    ----------
    shape:
        Positive side lengths, one per dimension.

    Examples
    --------
    >>> g = Grid((3, 3))
    >>> g.size
    9
    >>> g.index_of((1, 2))
    5
    >>> g.point_of(5)
    (1, 2)
    """

    __slots__ = ("_shape", "_strides", "_size")

    def __init__(self, shape: Sequence[int]):
        shape = tuple(int(s) for s in shape)
        if len(shape) == 0:
            raise InvalidParameterError("a grid needs at least one dimension")
        if any(s <= 0 for s in shape):
            raise InvalidParameterError(
                f"grid side lengths must be positive, got {shape}"
            )
        self._shape = shape
        strides = []
        acc = 1
        for s in reversed(shape):
            strides.append(acc)
            acc *= s
        self._strides = tuple(reversed(strides))
        self._size = acc

    @classmethod
    def cube(cls, side: int, ndim: int) -> "Grid":
        """A hyper-cubic grid with ``ndim`` axes of length ``side``."""
        if ndim <= 0:
            raise InvalidParameterError(f"ndim must be positive, got {ndim}")
        return cls((side,) * ndim)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Side length of every axis."""
        return self._shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self._shape)

    @property
    def size(self) -> int:
        """Total number of cells."""
        return self._size

    @property
    def strides(self) -> Tuple[int, ...]:
        """Row-major strides: ``index = sum(p[i] * strides[i])``."""
        return self._strides

    @property
    def max_manhattan(self) -> int:
        """The largest Manhattan distance between two cells."""
        return sum(s - 1 for s in self._shape)

    # ------------------------------------------------------------------
    # Point <-> index conversion
    # ------------------------------------------------------------------
    def contains(self, point: Sequence[int]) -> bool:
        """Whether ``point`` lies inside the grid."""
        if len(point) != self.ndim:
            return False
        return all(0 <= int(c) < s for c, s in zip(point, self._shape))

    def require_point(self, point: Sequence[int]) -> Point:
        """Validate ``point`` and return it as a tuple of ints."""
        pt = tuple(int(c) for c in point)
        if len(pt) != self.ndim:
            raise DimensionError(
                f"point {pt} has {len(pt)} coordinates; grid has {self.ndim}"
            )
        if not self.contains(pt):
            raise DomainError(f"point {pt} outside grid of shape {self._shape}")
        return pt

    def index_of(self, point: Sequence[int]) -> int:
        """Row-major flat index of ``point``."""
        pt = self.require_point(point)
        return sum(c * st for c, st in zip(pt, self._strides))

    def point_of(self, index: int) -> Point:
        """Coordinate tuple of the cell with row-major flat ``index``."""
        index = int(index)
        if not 0 <= index < self._size:
            raise DomainError(
                f"index {index} outside grid of size {self._size}"
            )
        coords = []
        for st in self._strides:
            coords.append(index // st)
            index %= st
        return tuple(coords)

    def indices_of(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`index_of` for an ``(n, ndim)`` integer array."""
        pts = np.asarray(points)
        if pts.ndim != 2 or pts.shape[1] != self.ndim:
            raise DimensionError(
                f"expected an (n, {self.ndim}) array, got shape {pts.shape}"
            )
        if pts.size and ((pts < 0).any() or (pts >= np.array(self._shape)).any()):
            raise DomainError("some points lie outside the grid")
        return np.ravel_multi_index(tuple(pts.T), self._shape)

    def points_of(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`point_of`: returns an ``(n, ndim)`` array."""
        idx = np.asarray(indices)
        if idx.size and ((idx < 0).any() or (idx >= self._size).any()):
            raise DomainError("some indices lie outside the grid")
        return np.stack(np.unravel_index(idx, self._shape), axis=-1)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def points(self) -> Iterator[Point]:
        """All cells in row-major order, as coordinate tuples."""
        for index in range(self._size):
            yield self.point_of(index)

    def coordinates(self) -> np.ndarray:
        """An ``(size, ndim)`` int array of every cell, in row-major order."""
        return np.stack(
            np.unravel_index(np.arange(self._size), self._shape), axis=1
        )

    # ------------------------------------------------------------------
    # Metric and neighborhoods
    # ------------------------------------------------------------------
    @staticmethod
    def manhattan(p: Sequence[int], q: Sequence[int]) -> int:
        """Manhattan (L1) distance between two coordinate tuples."""
        if len(p) != len(q):
            raise DimensionError(
                f"points have different dimensionality: {len(p)} vs {len(q)}"
            )
        return int(sum(abs(int(a) - int(b)) for a, b in zip(p, q)))

    @staticmethod
    def chebyshev(p: Sequence[int], q: Sequence[int]) -> int:
        """Chebyshev (L-infinity) distance between two coordinate tuples."""
        if len(p) != len(q):
            raise DimensionError(
                f"points have different dimensionality: {len(p)} vs {len(q)}"
            )
        return int(max(abs(int(a) - int(b)) for a, b in zip(p, q)))

    def neighbors(self, point: Sequence[int],
                  connectivity="orthogonal") -> Iterator[Point]:
        """In-grid neighbours of ``point`` under the given connectivity.

        ``"orthogonal"`` (alias 4) yields the at-most ``2 * ndim`` cells at
        Manhattan distance 1; ``"moore"`` (alias 8) yields the at-most
        ``3**ndim - 1`` cells at Chebyshev distance 1.
        """
        pt = self.require_point(point)
        style = _normalize_connectivity(connectivity)
        if style == "orthogonal":
            for axis in range(self.ndim):
                for delta in (-1, 1):
                    cand = list(pt)
                    cand[axis] += delta
                    if 0 <= cand[axis] < self._shape[axis]:
                        yield tuple(cand)
        else:  # moore
            yield from self._moore_neighbors(pt)

    def _moore_neighbors(self, pt: Point) -> Iterator[Point]:
        offsets = [(-1, 0, 1)] * self.ndim
        stack: list[Tuple[int, ...]] = [()]
        for axis in range(self.ndim):
            stack = [
                prefix + (pt[axis] + d,)
                for prefix in stack
                for d in offsets[axis]
                if 0 <= pt[axis] + d < self._shape[axis]
            ]
        for cand in stack:
            if cand != pt:
                yield cand

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Point]:
        return self.points()

    def __contains__(self, point) -> bool:
        try:
            return self.contains(point)
        except TypeError:
            return False

    def __eq__(self, other) -> bool:
        return isinstance(other, Grid) and other._shape == self._shape

    def __hash__(self) -> int:
        return hash(("Grid", self._shape))

    def __repr__(self) -> str:
        return f"Grid(shape={self._shape})"


def pairs_along_axis(grid: Grid, axis: int, delta: int):
    """All index pairs ``(i, j)`` whose cells differ by ``delta`` along one axis.

    The two cells agree on every other coordinate, so their Manhattan
    distance is exactly ``delta``.  Returned as two flat-index arrays
    ``(left, right)`` with ``right = left + delta * strides[axis]``.

    This is the pair family used by the paper's *fairness* experiment
    (Figure 5b): distance measured "over only one dimension".
    """
    if not 0 <= axis < grid.ndim:
        raise InvalidParameterError(
            f"axis {axis} out of range for {grid.ndim}-d grid"
        )
    if delta <= 0 or delta >= grid.shape[axis]:
        raise InvalidParameterError(
            f"delta must be in [1, {grid.shape[axis] - 1}], got {delta}"
        )
    coords = grid.coordinates()
    mask = coords[:, axis] + delta < grid.shape[axis]
    left = np.flatnonzero(mask)
    right = left + delta * grid.strides[axis]
    return left, right

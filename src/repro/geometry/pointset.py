"""Sparse point-set domains: a named subset of a grid's cells.

The paper's algorithm maps "a set of multi-dimensional points" — in its
experiments that set is always a full grid, but Sections 1 and 6 (R-tree
packing, spatial joins) work on *sparse* data: a few hundred points
scattered over a large space.  A :class:`PointSet` is the value type for
that case: a grid (fixing dimensionality and bounds) plus the distinct
flat indices of the occupied cells, canonicalized so that two point sets
built from the same cells in any order compare, hash, and fingerprint
identically.

``PointSet`` completes the ``Domain`` union consumed by the unified API
(:mod:`repro.api`): ``Grid`` (every cell), ``PointSet`` (a subset of
cells), ``Graph`` (arbitrary vertices and affinities).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DomainError, InvalidParameterError
from repro.geometry.grid import Grid


class PointSet:
    """An immutable, canonicalized subset of a grid's cells.

    Parameters
    ----------
    grid:
        The bounding :class:`Grid`, fixing dimensionality and extent.
    cells:
        Flat cell indices (any order, duplicates allowed); stored as the
        ascending distinct ``int64`` array — the same canonical form the
        graph builders and the ordering service use, so a ``PointSet``
        round-trips through every cache layer without re-normalization.

    Examples
    --------
    >>> ps = PointSet(Grid((4, 4)), [5, 1, 5, 10])
    >>> list(ps.cells)
    [1, 5, 10]
    >>> len(ps)
    3
    """

    __slots__ = ("_grid", "_cells")

    def __init__(self, grid: Grid, cells: Sequence[int]):
        if not isinstance(grid, Grid):
            raise InvalidParameterError(
                f"grid must be a Grid, got {type(grid).__name__}"
            )
        canonical = np.unique(np.asarray(cells, dtype=np.int64))
        if canonical.size == 0:
            raise InvalidParameterError("a point set needs at least one cell")
        if canonical[0] < 0 or canonical[-1] >= grid.size:
            raise DomainError(
                f"cells must lie in [0, {grid.size}), got range "
                f"[{canonical[0]}, {canonical[-1]}]"
            )
        canonical.setflags(write=False)
        self._grid = grid
        self._cells = canonical

    # ------------------------------------------------------------------
    @property
    def grid(self) -> Grid:
        """The bounding grid."""
        return self._grid

    @property
    def cells(self) -> np.ndarray:
        """Ascending distinct flat cell indices (read-only)."""
        return self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def coordinates(self) -> np.ndarray:
        """A ``(len(self), ndim)`` int array of the occupied cells."""
        return self._grid.points_of(self._cells)

    # ------------------------------------------------------------------
    def __reduce__(self):
        # Rebuild through __init__ so the canonical cell array comes
        # back *read-only* (numpy drops the flag across pickling) and
        # re-validated — point sets are IPC payloads in repro.serve.
        return (PointSet, (self._grid, self._cells))

    def __eq__(self, other) -> bool:
        if not isinstance(other, PointSet):
            return NotImplemented
        return (self._grid == other._grid
                and np.array_equal(self._cells, other._cells))

    def __hash__(self) -> int:
        return hash((self._grid, self._cells.tobytes()))

    def __repr__(self) -> str:
        return (f"PointSet(grid={self._grid!r}, "
                f"k={len(self._cells)})")

"""The central registry of ``REPRO_*`` deployment knobs.

Every environment variable the library (or its test/CI harness) reads
is declared here, once, with its type, default, and the one module that
is allowed to read it from the environment — always through a
validating helper (:func:`repro.linalg.backends.cutoff_from_env`,
:func:`repro.net.config.positive_int_from_env`, ...), never a bare
``os.environ[...]`` that would silently swallow a typo.

Two consumers keep this registry honest:

* the ``RPR004`` rule of :mod:`repro.analysis` (the ``repro-lint``
  static checker) flags any ``REPRO_*`` environment read outside the
  declared reader module, and any ``REPRO_*`` name that does not appear
  here;
* the README's knob table is generated from
  :func:`render_knob_table`, and a test asserts the committed table
  matches — documentation cannot drift from the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "Knob",
    "KNOBS",
    "knob",
    "knob_names",
    "reader_modules",
    "render_knob_table",
]


@dataclass(frozen=True)
class Knob:
    """One ``REPRO_*`` environment variable.

    ``reader`` names the dotted module whose validating helper resolves
    the variable at import time; ``None`` marks a knob consumed only by
    the test/benchmark harness, which no library module may read.
    """

    name: str
    kind: str
    default: str
    reader: Optional[str]
    description: str


#: Every ``REPRO_*`` variable, in documentation order.
KNOBS: Tuple[Knob, ...] = (
    Knob(
        name="REPRO_DENSE_CUTOFF",
        kind="int >= 1",
        default="1024",
        reader="repro.linalg.backends",
        description="Largest vertex count solved by the dense eigensolver "
                    "before switching to iterative backends.",
    ),
    Knob(
        name="REPRO_LOBPCG_CUTOFF",
        kind="int >= 1",
        default="4096",
        reader="repro.linalg.backends",
        description="Vertex count above which the auto policy picks the "
                    "multilevel-preconditioned LOBPCG backend on the "
                    "scipy-less leg.",
    ),
    Knob(
        name="REPRO_MULTILEVEL_CUTOFF",
        kind="int >= 1",
        default="131072",
        reader="repro.linalg.backends",
        description="Vertex count above which the auto policy picks the "
                    "multilevel (coarsen-and-refine) backend.",
    ),
    Knob(
        name="REPRO_QUERY_WORKERS",
        kind="int >= 1",
        default="unset (sequential)",
        reader="repro.api.executor",
        description="Default thread-pool width for "
                    "``SpectralIndex.query_many`` and the asyncio facade.",
    ),
    Knob(
        name="REPRO_NET_TIMEOUT",
        kind="float seconds > 0",
        default="30.0",
        reader="repro.net.config",
        description="Server-side per-request deadline; requests queued "
                    "longer are rejected with ``ServerBusy(\"deadline\")``.",
    ),
    Knob(
        name="REPRO_NET_QUEUE_DEPTH",
        kind="int >= 1",
        default="64",
        reader="repro.net.config",
        description="Capacity of the socket server's bounded admission "
                    "queue; arrivals beyond it get "
                    "``ServerBusy(\"queue_full\")``.",
    ),
    Knob(
        name="REPRO_NO_SCIPY",
        kind="flag (\"1\")",
        default="unset",
        reader=None,
        description="Test/CI harness only: marks the scipy-less leg so "
                    "scipy-specific tests skip themselves.",
    ),
    Knob(
        name="REPRO_BENCH_FULL",
        kind="flag (\"1\")",
        default="unset",
        reader=None,
        description="Benchmark harness only: enables the slow full-size "
                    "acceptance tiers (e.g. the 256^2 preconditioned-solver "
                    "bar).",
    ),
)


def knob(name: str) -> Optional[Knob]:
    """The registered knob called ``name``, or ``None``."""
    for entry in KNOBS:
        if entry.name == name:
            return entry
    return None


def knob_names() -> Tuple[str, ...]:
    """Every registered ``REPRO_*`` name, in documentation order."""
    return tuple(entry.name for entry in KNOBS)


def reader_modules() -> Tuple[str, ...]:
    """The modules allowed to read ``REPRO_*`` from the environment."""
    seen = []
    for entry in KNOBS:
        if entry.reader is not None and entry.reader not in seen:
            seen.append(entry.reader)
    return tuple(seen)


def render_knob_table() -> str:
    """The registry as a GitHub-flavored markdown table.

    This exact text lives in the README between the
    ``<!-- knob-table:start -->`` / ``<!-- knob-table:end -->`` markers;
    ``tests/analysis/test_rule_env_knobs.py`` asserts the two match.
    """
    lines = [
        "| Variable | Type | Default | Read by | Purpose |",
        "| --- | --- | --- | --- | --- |",
    ]
    for entry in KNOBS:
        reader = (f"`{entry.reader}`" if entry.reader is not None
                  else "tests/benchmarks only")
        lines.append(
            f"| `{entry.name}` | {entry.kind} | {entry.default} | "
            f"{reader} | {entry.description} |"
        )
    return "\n".join(lines) + "\n"

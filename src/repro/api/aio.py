"""AsyncSpectralIndex: the asyncio front of the serving facade.

An async service embedding the index (an aiohttp/FastAPI handler, a
worker consuming a queue) must not block its event loop on a range scan
or — far worse — a cold eigensolve.  :class:`AsyncSpectralIndex` wraps
a :class:`~repro.api.SpectralIndex` and exposes the same query surface
as coroutines that run the synchronous engine on a thread-pool
executor, so the loop stays responsive and concurrent requests overlap
exactly the way ``query_many(parallelism=...)`` overlaps them:

    index = AsyncSpectralIndex.build((64, 64))
    execution = await index.range(((4, 4), (9, 9)))
    results = await index.query_many([...])      # gather-friendly
    await index.aclose()

Safety comes from the layers below, not from here: the wrapped index's
lazy state is single-flight, the ordering service coalesces identical
solves, and the buffer pool locks per access — so any number of
in-flight coroutines (or a mix of async and plain-thread callers
sharing one ``SpectralIndex``) see exactly-once materialization and
exact accounting.  ``query_many`` dispatches each query as its own
executor job and gathers them, so a batch interleaves with other
coroutines instead of occupying one worker for its whole duration.
"""

from __future__ import annotations

import asyncio
import functools
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.api.domains import Domain, DomainLike
from repro.api.executor import default_async_workers, resolve_parallelism
from repro.api.index import SpectralIndex
from repro.api.mappings import MappingSpec
from repro.api.queries import NNResult, Query
from repro.core.ordering import LinearOrder
from repro.errors import InvalidParameterError
from repro.query.engine import QueryExecution, WorkloadReport
from repro.query.join import JoinReport


class AsyncSpectralIndex:
    """Asyncio facade over a :class:`~repro.api.SpectralIndex`.

    Parameters
    ----------
    index:
        The synchronous index to serve.  It may simultaneously be used
        directly from other threads; all shared state is locked there.
    workers:
        Width of the owned executor; defaults to ``REPRO_QUERY_WORKERS``
        when set, else the stdlib heuristic (``min(32, cpus + 4)``).
        Ignored when ``executor`` is supplied.
    executor:
        An externally owned :class:`~concurrent.futures.ThreadPoolExecutor`
        to run on instead; the caller keeps responsibility for shutting
        it down (:meth:`aclose` will not touch it).
    """

    def __init__(self, index: SpectralIndex, *,
                 workers: Optional[int] = None,
                 executor: Optional[ThreadPoolExecutor] = None):
        if not isinstance(index, SpectralIndex):
            raise InvalidParameterError(
                f"index must be a SpectralIndex, got {type(index).__name__}"
            )
        self._index = index
        if executor is not None:
            self._executor = executor
            self._owns_executor = False
        else:
            width = (default_async_workers() if workers is None
                     else resolve_parallelism(workers))
            self._executor = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="repro-aio")
            self._owns_executor = True

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, domain: DomainLike,
              mapping: MappingSpec = "spectral", *,
              workers: Optional[int] = None,
              executor: Optional[ThreadPoolExecutor] = None,
              **build_kwargs) -> "AsyncSpectralIndex":
        """:meth:`SpectralIndex.build` wrapped for asyncio serving.

        ``build_kwargs`` are forwarded verbatim (``config``,
        ``service``, ``page_size``, ...).  Building is cheap and lazy —
        no solve happens until the first query — so this stays a plain
        classmethod, not a coroutine.
        """
        return cls(SpectralIndex.build(domain, mapping, **build_kwargs),
                   workers=workers, executor=executor)

    # ------------------------------------------------------------------
    @property
    def index(self) -> SpectralIndex:
        """The wrapped synchronous index."""
        return self._index

    @property
    def domain(self) -> Domain:
        return self._index.domain

    @property
    def service(self):
        return self._index.service

    @property
    def stats(self):
        return self._index.stats

    # ------------------------------------------------------------------
    async def _run(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, functools.partial(fn, *args, **kwargs))

    async def order(self) -> LinearOrder:
        """The default mapping's order (may pay the first eigensolve)."""
        return await self._run(lambda: self._index.order)

    async def ranks(self) -> np.ndarray:
        """The default mapping's rank array."""
        return await self._run(lambda: self._index.ranks)

    async def order_for(self, mapping: MappingSpec) -> LinearOrder:
        return await self._run(self._index.order_for, mapping)

    async def ranks_for(self, mapping: MappingSpec) -> np.ndarray:
        return await self._run(self._index.ranks_for, mapping)

    async def range(self, box, *, plan: str = "span-scan",
                    mapping: Optional[MappingSpec] = None
                    ) -> QueryExecution:
        """Awaitable :meth:`SpectralIndex.range`."""
        return await self._run(self._index.range, box, plan=plan,
                               mapping=mapping)

    async def nn(self, cell, k: int, *, window: Optional[int] = None,
                 mapping: Optional[MappingSpec] = None) -> NNResult:
        """Awaitable :meth:`SpectralIndex.nn`."""
        return await self._run(self._index.nn, cell, k, window=window,
                               mapping=mapping)

    async def join(self, cells_a, cells_b, *, epsilon: int, window: int,
                   mapping: Optional[MappingSpec] = None) -> JoinReport:
        """Awaitable :meth:`SpectralIndex.join`."""
        return await self._run(self._index.join, cells_a, cells_b,
                               epsilon=epsilon, window=window,
                               mapping=mapping)

    async def workload(self, boxes, *, plan: str = "span-scan",
                       mapping: Optional[MappingSpec] = None
                       ) -> WorkloadReport:
        """Awaitable :meth:`SpectralIndex.workload` (sequential inside
        one executor job; use :meth:`query_many` to overlap queries)."""
        return await self._run(self._index.workload, boxes, plan=plan,
                               mapping=mapping)

    async def query_many(self, queries: Sequence[Query], *,
                         parallelism: Optional[int] = None) -> List:
        """Execute a query batch; results align with the input.

        Order acquisition runs once (batched through the service,
        exactly like the sync path); each query then becomes its own
        executor job and the jobs are gathered — so the batch shares
        the executor fairly with every other coroutine, and
        ``asyncio.gather(index.query_many(a), index.query_many(b))``
        interleaves both batches.  ``parallelism`` governs the
        *materialization* stage exactly as on the sync path (argument,
        then ``REPRO_QUERY_WORKERS``, then sequential): a cold batch
        spanning K non-batchable mappings overlaps its K solves instead
        of paying them back to back inside one executor job.
        """
        queries = self._index._coerce_queries(queries)
        views = await self._run(self._index._views_for, queries,
                                resolve_parallelism(parallelism))
        jobs = [self._run(self._index._execute_query, view, query)
                for view, query in zip(views, queries)]
        return list(await asyncio.gather(*jobs))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the owned executor (no-op for a borrowed one)."""
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    async def aclose(self) -> None:
        """Awaitable :meth:`close` (shutdown waits off the event loop)."""
        if self._owns_executor:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, functools.partial(self._executor.shutdown,
                                        wait=True))

    async def __aenter__(self) -> "AsyncSpectralIndex":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    def __repr__(self) -> str:
        return f"AsyncSpectralIndex({self._index!r})"

"""The ``Domain`` union: everything a mapping can linearize.

The paper's pipeline starts from "a set of multi-dimensional points";
this library serves three concrete shapes of that set:

* :class:`~repro.geometry.Grid` — every cell of a finite grid (the
  paper's experimental setting);
* :class:`~repro.geometry.PointSet` — a sparse subset of a grid's cells
  (R-tree packing, spatial joins);
* :class:`~repro.graph.Graph` — arbitrary vertices with explicit
  affinities (Section 4's "any graph type" claim, access-pattern
  edges).

:func:`as_domain` is the single coercion point the facade uses: it
accepts any union member unchanged and promotes a plain shape tuple to a
:class:`~repro.geometry.Grid`, so ``SpectralIndex.build((8, 8))`` works.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.errors import InvalidParameterError
from repro.geometry.grid import Grid
from repro.geometry.pointset import PointSet
from repro.graph.adjacency import Graph

#: The union of domain kinds the unified API accepts.
Domain = Union[Grid, PointSet, Graph]

#: What callers may pass where a domain is expected: a union member or a
#: plain shape sequence (promoted to a :class:`Grid`).
DomainLike = Union[Grid, PointSet, Graph, Sequence[int]]


def as_domain(domain: DomainLike) -> Domain:
    """Coerce ``domain`` to a member of the :data:`Domain` union.

    Grids, point sets, and graphs pass through unchanged; a sequence of
    positive integers becomes ``Grid(domain)``.  Anything else raises
    :class:`~repro.errors.InvalidParameterError`.
    """
    if isinstance(domain, (Grid, PointSet, Graph)):
        return domain
    if isinstance(domain, (tuple, list)):
        return Grid(domain)
    raise InvalidParameterError(
        "domain must be a Grid, PointSet, Graph, or a shape sequence, "
        f"got {type(domain).__name__}"
    )

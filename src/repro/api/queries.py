"""Typed query values for the batch-first facade.

:meth:`repro.api.SpectralIndex.query_many` consumes a heterogeneous
batch of these values and returns results aligned with the input.  Each
query optionally carries its own ``mapping`` spec (any
:data:`~repro.api.mappings.MappingSpec`); ``None`` means the index's
default mapping.  Batching by value (rather than by method call) is what
lets the facade pull every spectral order the batch needs through
:meth:`~repro.service.OrderingService.order_many` in one shot, so K
same-topology configurations pay a single graph build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np


@dataclass(frozen=True)
class RangeQuery:
    """An axis-aligned range query (the paper's Section-5 workload).

    ``box`` is a :class:`~repro.geometry.Box` or a ``(lo, hi)`` corner
    pair; ``plan`` is one of :data:`repro.query.PLANS`.  Executes to a
    :class:`~repro.query.QueryExecution`.
    """

    box: object
    plan: str = "span-scan"
    mapping: Optional[object] = None


@dataclass(frozen=True)
class NNQuery:
    """A k-nearest-neighbour query through the rank window (Figure 5).

    ``cell`` is a flat index or coordinate tuple.  ``window`` fixes the
    half-width of the examined rank window; ``None`` grows it until at
    least ``k`` candidates are found.  Executes to an :class:`NNResult`.
    """

    cell: Union[int, Sequence[int]]
    k: int
    window: Optional[int] = None
    mapping: Optional[object] = None


@dataclass(frozen=True)
class JoinQuery:
    """A window spatial join between two cell sets (Sections 1 and 6).

    All pairs within Manhattan distance ``epsilon``, approximated by
    pairs within rank distance ``window``.  Executes to a
    :class:`~repro.query.JoinReport`.
    """

    cells_a: Sequence[int]
    cells_b: Sequence[int]
    epsilon: int
    window: int
    mapping: Optional[object] = None


#: The query union :meth:`SpectralIndex.query_many` accepts.
Query = Union[RangeQuery, NNQuery, JoinQuery]


@dataclass(frozen=True)
class NNResult:
    """Result of an :class:`NNQuery`.

    Attributes
    ----------
    neighbors:
        The ``k`` returned cells (flat indices), nearest first —
        candidates from the rank window re-ranked by true Manhattan
        distance (ties broken by ascending flat index).
    window:
        The rank-window half-width actually examined.
    candidates:
        How many cells the window contained (the work a 1-D index would
        fetch); locality quality is ``k / candidates``.
    """

    neighbors: np.ndarray
    window: int
    candidates: int

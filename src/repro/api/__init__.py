"""repro.api — the unified, typed, batch-first public API.

One import gives the whole pipeline behind one front door::

    from repro.api import SpectralIndex

    index = SpectralIndex.build((32, 32))        # domain -> index
    execution = index.range(((4, 4), (9, 9)))    # B+-tree range query
    result = index.nn((5, 5), k=8)               # rank-window k-NN

The pieces, in dependency order:

* **Domain** (:mod:`~repro.api.domains`) — what gets ordered: a grid,
  a sparse :class:`~repro.geometry.PointSet`, or a graph.
* **Mapping** (:mod:`~repro.api.mappings`) — how it gets ordered: one
  protocol with declared capabilities, implemented by both the curve
  and spectral families; :func:`make_mapping` is the one resolver.
* **Service** (:class:`~repro.service.OrderingService`) — who pays for
  eigensolves: two cache tiers, request coalescing (concurrent misses
  on one fingerprint run exactly one solve), and topology-amortized
  batching.
* **Index** (:class:`SpectralIndex`) — the facade composing all of the
  above with the page layout and query engine: ``range``, ``nn``,
  ``join``, and the vectorized ``query_many`` (thread-pooled via
  ``parallelism=`` / ``REPRO_QUERY_WORKERS``).
* **Serving fronts** — :class:`AsyncSpectralIndex`
  (:mod:`repro.api.aio`) runs the same surface as coroutines on an
  executor for event-loop services,
  :class:`~repro.service.ShardedIndexFrontend` partitions traffic over
  the fingerprint keyspace to per-shard services in-process,
  :class:`ProcessPoolFrontend` serves the identical surface over a
  fleet of worker *processes* (:mod:`repro.serve`) with per-shard disk
  stores that make fleet restarts eigensolve-free, and
  :class:`RemoteFrontend` (:mod:`repro.net`) speaks the same surface
  to a ``repro-serve --listen`` server over TCP.

The pre-facade entry points (``repro.mapping.mapping_by_name``, direct
``LinearStore`` construction) have completed their deprecation cycle
and are gone: mappings come from :func:`make_mapping`, stores from
:meth:`SpectralIndex.build`.
"""

from repro.api.aio import AsyncSpectralIndex
from repro.api.domains import Domain, DomainLike, as_domain
from repro.api.executor import WORKERS_ENV
from repro.api.index import SpectralIndex
from repro.api.process_pool import ProcessPoolFrontend
from repro.api.mappings import Mapping, MappingSpec, make_mapping
from repro.api.queries import (
    JoinQuery,
    NNQuery,
    NNResult,
    Query,
    RangeQuery,
)
from repro.core.spectral import SpectralConfig
from repro.geometry.pointset import PointSet
from repro.mapping.interface import MappingCapabilities
from repro.net.client import RemoteFrontend
from repro.service.ordering import OrderingService

__all__ = [
    "AsyncSpectralIndex",
    "Domain",
    "DomainLike",
    "JoinQuery",
    "Mapping",
    "MappingCapabilities",
    "MappingSpec",
    "NNQuery",
    "NNResult",
    "OrderingService",
    "PointSet",
    "ProcessPoolFrontend",
    "Query",
    "RangeQuery",
    "RemoteFrontend",
    "SpectralConfig",
    "SpectralIndex",
    "WORKERS_ENV",
    "as_domain",
    "make_mapping",
]

"""Thread-pool execution policy for the serving facade.

:meth:`repro.api.SpectralIndex.query_many` acquires every order a batch
needs through one batched service call and then executes the queries;
this module owns the *how many at once* decision for that execution (and
for the :class:`~repro.api.aio.AsyncSpectralIndex` front riding on it).

The knob resolves in precedence order:

1. an explicit ``parallelism=`` argument;
2. the ``REPRO_QUERY_WORKERS`` environment variable (deployment
   policy, like the solver cutoffs);
3. ``1`` — sequential, the safe default.

Query execution scales under threads because the per-query hot paths
(rank-window scans, Manhattan re-ranking, page-set computation) spend
their time in numpy kernels that release the GIL, while the shared
mutable state they touch (buffer pool, lazy view/store materialization,
service caches) is individually locked — see
:mod:`repro.storage.buffer` and :class:`~repro.api.SpectralIndex`.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import InvalidParameterError
from repro.parallel import ensure_workers, map_in_threads as _map

#: Environment variable supplying the default worker count for
#: ``query_many`` fan-out (and the asyncio facade's executor).
WORKERS_ENV = "REPRO_QUERY_WORKERS"

T = TypeVar("T")
R = TypeVar("R")


def workers_from_env() -> Optional[int]:
    """The ``REPRO_QUERY_WORKERS`` value, validated; ``None`` if unset.

    An unset or empty variable means "no deployment policy"; anything
    else must parse as an integer >= 1 (misconfiguration raises rather
    than silently serializing a fleet).
    """
    raw = os.environ.get(WORKERS_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise InvalidParameterError(
            f"{WORKERS_ENV} must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise InvalidParameterError(
            f"{WORKERS_ENV} must be an integer >= 1, got {value}"
        )
    return value


def resolve_parallelism(parallelism: Optional[int]) -> int:
    """Worker count for a query batch: argument, env var, then 1."""
    if parallelism is None:
        env = workers_from_env()
        return 1 if env is None else env
    return ensure_workers(parallelism)


def default_async_workers() -> int:
    """Executor width for the asyncio facade.

    ``REPRO_QUERY_WORKERS`` wins when set; otherwise the stdlib's
    ThreadPoolExecutor sizing heuristic (``min(32, cpus + 4)``) — the
    asyncio front exists to overlap queries, so unlike the sync path it
    must not default to a single worker.
    """
    env = workers_from_env()
    if env is not None:
        return env
    return min(32, (os.cpu_count() or 1) + 4)


def map_in_threads(fn: Callable[[T], R], items: Sequence[T],
                   workers: int) -> List[R]:
    """:func:`repro.parallel.map_in_threads` with the facade's pool name."""
    return _map(fn, items, workers, thread_name_prefix="repro-query")

"""ProcessPoolFrontend: the sharded frontend surface, across processes.

:class:`~repro.service.ShardedIndexFrontend` partitions the fingerprint
keyspace over per-shard services *within one process*;
``ProcessPoolFrontend`` serves the same surface over a
:class:`~repro.serve.ProcessFleet` of worker *processes* — same
deterministic routing (:func:`~repro.service.routing.shard_of_domain`),
same batching semantics (shard-grouped ``order_many`` with per-shard
topology amortization, now inside each worker), same observability
(``stats`` / ``combined_stats``), bit-identical answers (pinned by
test against the in-process frontend).

What it adds over the in-process front: true multi-core scaling for
CPU-bound eigensolves without the GIL in the picture, per-worker crash
isolation with restart-and-rehydrate, and restart-warm fleets — per
shard on-disk stores mean a full fleet bounce pays zero eigensolves
for every previously-seen domain.

What it costs: every request and result crosses a pickle boundary —
a few hundred microseconds of dispatch overhead on a warm hit, ~10x
an in-process hit (measured by
``benchmarks/test_bench_multiproc_serving.py``), so it pays off for
solve-heavy or many-domain traffic, not microsecond-scale cache hits.
Choose by deployment shape — see the README's serving section.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ordering import LinearOrder
from repro.errors import InvalidParameterError
from repro.obs import span
from repro.parallel import ensure_workers, map_in_threads
from repro.geometry.grid import Grid
from repro.graph.adjacency import Graph
from repro.service.artifacts import OrderArtifact
from repro.service.ordering import ServiceStats, normalize_requests
from repro.service.routing import coerce_domain, shard_of_domain
from repro.serve.protocol import (
    IndexQueryMessage,
    OrderManyMessage,
    OrderRequestMessage,
)
from repro.serve.supervisor import ProcessFleet


class ProcessPoolFrontend:
    """Routes ordering and query traffic across worker processes.

    Serves the same surface as
    :class:`~repro.service.ShardedIndexFrontend`; construction spawns
    the fleet (or adopts a prebuilt one via ``fleet=``).  Use as a
    context manager, or call :meth:`close` — worker processes are real
    resources, not garbage-collected conveniences.

    Parameters
    ----------
    shards:
        Number of keyspace partitions (ignored when ``fleet`` given).
    workers:
        Worker processes; defaults to one per shard.
    cache_dir:
        Root of the per-shard artifact stores; a fleet restarted over
        the same root answers every warm request from disk with zero
        eigensolves.  ``None`` keeps workers memory-only.
    index_defaults:
        Default build keywords for the worker-local indexes behind
        :meth:`range` / :meth:`nn` / :meth:`join` / :meth:`query_many`.
    fleet:
        Adopt an existing :class:`~repro.serve.ProcessFleet` instead of
        spawning one; the frontend then owns its shutdown.

    Examples
    --------
    >>> from repro.geometry import Grid
    >>> with ProcessPoolFrontend(shards=2) as front:  # doctest: +SKIP
    ...     front.order_grid(Grid((6, 6))).n
    36
    """

    def __init__(self, shards: int = 4, *,
                 workers: Optional[int] = None,
                 cache_dir=None,
                 memory_entries: int = 128,
                 hierarchy_entries: int = 32,
                 max_indexes: int = 16,
                 index_defaults: Optional[dict] = None,
                 fleet: Optional[ProcessFleet] = None):
        if fleet is not None:
            if not isinstance(fleet, ProcessFleet):
                raise InvalidParameterError(
                    f"fleet must be a ProcessFleet, "
                    f"got {type(fleet).__name__}"
                )
            self._fleet = fleet
        else:
            self._fleet = ProcessFleet(
                shards, workers=workers, cache_dir=cache_dir,
                memory_entries=memory_entries,
                hierarchy_entries=hierarchy_entries,
                max_indexes=max_indexes,
                index_defaults=index_defaults,
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def fleet(self) -> ProcessFleet:
        """The underlying worker fleet (restart/observe through it)."""
        return self._fleet

    def close(self) -> None:
        """Shut the fleet down gracefully.  Idempotent."""
        self._fleet.close()

    def __enter__(self) -> "ProcessPoolFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """How many keyspace partitions this frontend routes over."""
        return self._fleet.num_shards

    @property
    def num_workers(self) -> int:
        """How many worker processes serve those shards."""
        return self._fleet.num_workers

    def shard_of(self, domain) -> int:
        """The shard owning ``domain`` — identical to the in-process
        frontend's routing, by construction (one shared formula)."""
        return shard_of_domain(domain, self._fleet.num_shards)

    def worker_of(self, domain) -> int:
        """The worker process serving ``domain``."""
        return self._fleet.worker_of_shard(self.shard_of(domain))

    # ------------------------------------------------------------------
    # Ordering traffic
    # ------------------------------------------------------------------
    def order_grid(self, grid: Grid, config=None) -> LinearOrder:
        """Routed :meth:`~repro.service.OrderingService.order_grid`."""
        return self._order_one(grid, config, expect=Grid,
                               want_artifact=False)

    def grid_artifact(self, grid: Grid, config=None) -> OrderArtifact:
        """Routed :meth:`~repro.service.OrderingService.grid_artifact`."""
        return self._order_one(grid, config, expect=Grid,
                               want_artifact=True)

    def order_graph(self, graph: Graph, config=None) -> LinearOrder:
        """Routed :meth:`~repro.service.OrderingService.order_graph`."""
        return self._order_one(graph, config, expect=Graph,
                               want_artifact=False)

    def graph_artifact(self, graph: Graph, config=None) -> OrderArtifact:
        """Routed :meth:`~repro.service.OrderingService.graph_artifact`."""
        return self._order_one(graph, config, expect=Graph,
                               want_artifact=True)

    def _order_one(self, domain, config, *, expect: type,
                   want_artifact: bool):
        domain = coerce_domain(domain)
        # The entry point fixes the domain kind (order_grid vs
        # order_graph), exactly as on the in-process frontends — the
        # worker dispatches on the value's type, so a mismatched call
        # must fail here, not silently serve the other family.
        if not isinstance(domain, expect):
            raise InvalidParameterError(
                f"expected a {expect.__name__} domain, "
                f"got {type(domain).__name__}"
            )
        return self._fleet.request(
            self.shard_of(domain),
            OrderRequestMessage(domain=domain, config=config,
                                want_artifact=want_artifact),
        )

    def order_many(self, requests: Sequence, *,
                   parallelism: Optional[int] = None
                   ) -> List[LinearOrder]:
        """Batched ordering across workers; results align with input.

        Requests are grouped by owning *worker* (one IPC round trip per
        involved worker); inside each worker they are re-grouped per
        shard so every shard's
        :meth:`~repro.service.OrderingService.order_many` keeps its
        one-topology-build amortization.  ``parallelism`` > 1 dispatches
        the worker sub-batches from that many threads — the dispatcher
        threads only block on pipes while the worker *processes* solve
        truly in parallel.
        """
        normalized = normalize_requests(requests)
        groups: Dict[int, List[int]] = {}
        shard_of_index: List[int] = []
        for i, request in enumerate(normalized):
            shard = self.shard_of(request.domain)
            shard_of_index.append(shard)
            groups.setdefault(self._fleet.worker_of_shard(shard),
                              []).append(i)
        results: List[Optional[LinearOrder]] = [None] * len(normalized)

        def run_worker(item: Tuple[int, List[int]]) -> None:
            worker, indices = item
            message = OrderManyMessage(tuple(
                (normalized[i].domain, normalized[i].config)
                for i in indices))
            orders = self._fleet.request(shard_of_index[indices[0]],
                                         message)
            for i, order in zip(indices, orders):
                results[i] = order

        with span("pool.order_many", batch=len(normalized),
                  workers=len(groups)):
            map_in_threads(run_worker, list(groups.items()),
                           ensure_workers(parallelism),
                           thread_name_prefix="repro-pool")
        return results

    # ------------------------------------------------------------------
    # Index traffic
    # ------------------------------------------------------------------
    def query_many(self, domain, queries: Sequence, *,
                   parallelism: Optional[int] = None) -> List:
        """Routed :meth:`~repro.api.SpectralIndex.query_many`, executed
        inside the owning worker (results cross back as pickles)."""
        ensure_workers(parallelism)  # validate before shipping
        return self._index_op(domain, "query_many", (list(queries),),
                              {"parallelism": parallelism})

    def range(self, domain, box, **kwargs):
        """Routed :meth:`~repro.api.SpectralIndex.range`."""
        return self._index_op(domain, "range", (box,), kwargs)

    def nn(self, domain, cell, k: int, **kwargs):
        """Routed :meth:`~repro.api.SpectralIndex.nn`."""
        return self._index_op(domain, "nn", (cell, k), kwargs)

    def join(self, domain, cells_a, cells_b, *, epsilon: int,
             window: int, **kwargs):
        """Routed :meth:`~repro.api.SpectralIndex.join`."""
        kwargs = dict(kwargs, epsilon=epsilon, window=window)
        return self._index_op(domain, "join", (cells_a, cells_b),
                              kwargs)

    def _index_op(self, domain, op: str, args: Tuple, kwargs: dict):
        domain = coerce_domain(domain)
        shard = self.shard_of(domain)
        with span("pool.index_op", op=op, shard=shard):
            return self._fleet.request(
                shard,
                IndexQueryMessage(domain=domain, op=op,
                                  args=tuple(args),
                                  kwargs=dict(kwargs)),
            )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> List[ServiceStats]:
        """Per-shard service stats, in shard order, fleet-wide."""
        return self._fleet.shard_stats()

    def combined_stats(self) -> ServiceStats:
        """All shards' counters summed into one snapshot."""
        return self._fleet.combined_stats()

    def health(self) -> List:
        """Per-worker :class:`~repro.serve.protocol.WorkerHealth`
        payloads (identity, uptime, per-shard store probes)."""
        return self._fleet.health()

    def worker_metrics(self) -> List[str]:
        """Per-worker Prometheus metric dumps, in worker order."""
        return self._fleet.worker_metrics()

    def __repr__(self) -> str:
        return (f"ProcessPoolFrontend(shards={self.num_shards}, "
                f"workers={self.num_workers})")

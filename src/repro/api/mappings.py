"""The ``Mapping`` protocol and the one resolver that builds mappings.

Every mapping family in the library satisfies one structural protocol:
a ``name``, declared :class:`~repro.mapping.MappingCapabilities`, and
``order_domain(domain, service=None)`` over the full ``Domain`` union.
Consumers — the :class:`~repro.api.SpectralIndex` facade, the figure
harnesses, user code — never need to know which family they hold.

:func:`make_mapping` is the single construction point.  It accepts:

* a registry name (``"hilbert"``, ``"spectral"``, ``"spectral-rb"``,
  ...);
* a :class:`~repro.core.spectral.SpectralConfig` (implies the spectral
  family);
* a ready mapping instance (returned unchanged).

The ``config=`` keyword carries spectral configuration *alongside* a
name: the spectral families consume it, pure curve names ignore it.
That asymmetry is deliberate — it is what lets a harness loop over
``("sweep", ..., "spectral")`` with one call per name instead of
special-casing the spectral member (the exact boilerplate this module
replaces).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Protocol, Union, runtime_checkable

import numpy as np

from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralConfig
from repro.errors import InvalidParameterError
from repro.mapping.interface import (
    CurveMapping,
    LocalityMapping,
    MappingCapabilities,
    SpectralBisectionMapping,
    SpectralMapping,
    SpectralMultilevelMapping,
)

#: What callers may pass where a mapping is expected.
MappingSpec = Union[str, SpectralConfig, LocalityMapping]


@runtime_checkable
class Mapping(Protocol):
    """Structural protocol every mapping family satisfies.

    The concrete classes live in :mod:`repro.mapping`; this protocol is
    what the facade and any user extension code against.  A conforming
    object provides a display ``name``, declared ``capabilities``, and
    ``order_domain`` over grids, point sets, and graphs.
    """

    @property
    def name(self) -> str:
        """Registry / display name."""
        ...

    @property
    def capabilities(self) -> MappingCapabilities:
        """Declared capabilities (batch encode, cacheable, provenance)."""
        ...

    def order_domain(self, domain, service=None) -> LinearOrder:
        """Order any member of the ``Domain`` union."""
        ...

    def ranks_for_grid(self, grid) -> np.ndarray:
        """Rank array over a grid's flat cell indices."""
        ...


def _spectral_kwargs(config: Optional[SpectralConfig], kwargs: dict) -> dict:
    """Merge a config (as defaults) under explicit keyword overrides."""
    merged = dict(dataclasses.asdict(config)) if config is not None else {}
    merged.update(kwargs)
    return merged


def make_mapping(spec: MappingSpec, *, service=None,
                 config: Optional[SpectralConfig] = None,
                 **kwargs) -> LocalityMapping:
    """Build (or pass through) a mapping from a :data:`MappingSpec`.

    Parameters
    ----------
    spec:
        A registry name from :data:`~repro.mapping.MAPPING_NAMES`, a
        :class:`~repro.core.spectral.SpectralConfig` (implies
        ``"spectral"``), or a ready mapping instance (returned as-is;
        ``config``/``kwargs`` are then rejected rather than silently
        dropped).
    service:
        Optional :class:`~repro.service.OrderingService` attached to
        spectral mappings (curves are pure arithmetic and ignore it).
    config:
        Spectral configuration applied when ``spec`` names the spectral
        family; ``"spectral-rb"`` / ``"spectral-ml"`` adopt its shared
        fields (``backend``, ``connectivity``).  Ignored by curve names,
        which is what keeps a mixed-name loop one call per name.
    kwargs:
        Per-family keyword overrides (they win over ``config``).  Curve
        names accept none.
    """
    if isinstance(spec, LocalityMapping):
        if config is not None or kwargs:
            raise InvalidParameterError(
                "a ready mapping instance accepts no config or keyword "
                "overrides; construct a new one instead"
            )
        return spec
    if isinstance(spec, SpectralConfig):
        if config is not None:
            raise InvalidParameterError(
                "pass either a SpectralConfig spec or config=, not both"
            )
        config = spec
        spec = "spectral"
    if not isinstance(spec, str):
        raise InvalidParameterError(
            "mapping spec must be a name, a SpectralConfig, or a mapping "
            f"instance, got {type(spec).__name__}"
        )
    lowered = spec.lower()
    if lowered == "spectral":
        return SpectralMapping(service=service,
                               **_spectral_kwargs(config, kwargs))
    if lowered == "spectral-rb":
        base = ({"backend": config.backend,
                 "connectivity": config.connectivity}
                if config is not None else {})
        base.update(kwargs)
        return SpectralBisectionMapping(**base)
    if lowered == "spectral-ml":
        base = ({"backend": config.backend,
                 "connectivity": config.connectivity}
                if config is not None else {})
        base.update(kwargs)
        return SpectralMultilevelMapping(**base)
    if kwargs:
        raise InvalidParameterError(
            f"curve mapping {spec!r} accepts no keyword arguments"
        )
    return CurveMapping(lowered)

"""SpectralIndex: the one front door over the whole pipeline.

The paper's pitch is that the spectral order is a drop-in replacement
for fractal orders; this facade makes the drop-in literal.  One call —

    index = SpectralIndex.build((32, 32))

— composes the domain (:mod:`repro.api.domains`), the mapping
(:mod:`repro.api.mappings`), the caching/batching
:class:`~repro.service.OrderingService`, the page layout and B+-tree
(:class:`~repro.query.LinearStore`), and the query machinery behind one
object with ``range(...)``, ``nn(...)``, ``join(...)``, and the
vectorized ``query_many([...])``.

Batch-first by construction: every order the index needs flows through
the service (concurrent misses on one fingerprint coalesce into a
single eigensolve), and ``query_many`` routes order acquisition through
:meth:`~repro.service.OrderingService.order_many`, so a batch spanning
K same-topology spectral configurations pays one graph build instead of
K.  Non-default mappings are materialized lazily and cached per index,
so comparing mappings over one domain — the shape of every figure
harness — is a loop over ``ranks_for(name)``.

The index is safe to share across threads (and is what the
thread-pooled ``query_many(parallelism=...)`` and the asyncio
:class:`~repro.api.aio.AsyncSpectralIndex` front execute against): the
lazily materialized per-mapping views are **single-flight** — two
threads missing the same view elect one materializer, the other waits
and reuses its result, so a non-cacheable mapping never pays a
duplicate eigensolve — and the lazy store/coordinate state is built
exactly once behind per-object locks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.domains import Domain, DomainLike, as_domain
from repro.api.executor import map_in_threads, resolve_parallelism
from repro.api.mappings import MappingSpec, make_mapping
from repro.api.queries import (
    JoinQuery,
    NNQuery,
    NNResult,
    Query,
    RangeQuery,
)
from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralConfig
from repro.errors import DomainError, InvalidParameterError
from repro.geometry.boxes import Box
from repro.geometry.grid import Grid
from repro.geometry.pointset import PointSet
from repro.graph.adjacency import Graph
from repro.mapping.interface import LocalityMapping, SpectralMapping
from repro.obs import Timer, registry, span
from repro.query.engine import LinearStore, QueryExecution, WorkloadReport
from repro.query.join import JoinReport, window_join_report
from repro.query.nn import window_candidates
from repro.service.artifacts import OrderArtifact
from repro.service.ordering import OrderingService, OrderRequest
from repro.storage.buffer import BufferStats
from repro.storage.disk import DiskCostModel

# Facade-level latency, labelled by query op.  Always on (a histogram
# observation per query, the same order of cost as the pre-existing
# buffer-pool counters); spans add detail only when tracing is enabled.
_QUERY_SECONDS = registry().histogram(
    "repro_query_seconds",
    "Per-query facade latency by op (range/nn/join).")


@dataclass
class _MappingView:
    """One mapping materialized against the index's domain."""

    mapping: LocalityMapping
    order: LinearOrder
    artifact: Optional[OrderArtifact] = None
    store: Optional[LinearStore] = None
    # Guards the lazy store build only (the view itself is published
    # fully formed); per-view so two mappings' stores never serialize.
    store_lock: threading.Lock = field(default_factory=threading.Lock,
                                       repr=False, compare=False)

    @property
    def ranks(self) -> np.ndarray:
        return self.order.ranks


class _ViewFlight:
    """One in-progress view materialization other threads can wait on.

    The same single-flight shape as the service's ``_Flight``: the
    leader computes with the lock released, waiters block on ``event``
    and read ``view``; a ``None`` view after the event means the leader
    failed and a waiter should retry (becoming the next leader).
    """

    __slots__ = ("event", "view")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.view: Optional[_MappingView] = None


class SpectralIndex:
    """A built index over one domain: ordering, layout, and queries.

    Construct with :meth:`build`; the constructor itself is the worker
    behind it and expects pre-coerced arguments.

    Examples
    --------
    >>> index = SpectralIndex.build((6, 6))
    >>> int(index.ranks.shape[0])
    36
    >>> index.mapping.name
    'spectral'
    """

    def __init__(self, domain: Domain, mapping: LocalityMapping,
                 service: OrderingService,
                 config: Optional[SpectralConfig],
                 page_size: int, tree_order: int,
                 buffer_capacity: Optional[int],
                 cost_model: Optional[DiskCostModel]):
        self._domain = domain
        self._service = service
        self._config = config
        self._page_size = int(page_size)
        self._tree_order = int(tree_order)
        self._buffer_capacity = buffer_capacity
        self._cost_model = cost_model
        self._views: Dict[Tuple, _MappingView] = {}  # guarded-by: _lock
        self._coords: Optional[np.ndarray] = None  # guarded-by: _lock
        # Guards _views / _view_flights / _coords.  Materialization
        # itself (eigensolves, store builds) runs outside it.
        self._lock = threading.RLock()
        self._view_flights: Dict[Tuple, _ViewFlight] = {}  # guarded-by: _lock
        # The default order is materialized on first access, not here:
        # an index used only to compare curve mappings must not pay a
        # spectral eigensolve at build time.
        self._default = mapping

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, domain: DomainLike, mapping: MappingSpec = "spectral",
              *, config: Optional[SpectralConfig] = None,
              service: Optional[OrderingService] = None,
              page_size: int = 16, tree_order: int = 32,
              buffer_capacity: Optional[int] = None,
              cost_model: Optional[DiskCostModel] = None
              ) -> "SpectralIndex":
        """Build an index over ``domain`` — the unified entry point.

        Parameters
        ----------
        domain:
            A :class:`~repro.geometry.Grid`, a
            :class:`~repro.geometry.PointSet`, a
            :class:`~repro.graph.Graph`, or a plain shape tuple
            (promoted to a grid).
        mapping:
            The default mapping: a registry name, a
            :class:`~repro.core.spectral.SpectralConfig`, or a mapping
            instance.  Defaults to the paper's spectral mapping.
        config:
            Spectral configuration applied to every spectral-family
            mapping this index resolves by name (including per-query
            mappings in :meth:`query_many`); curve names ignore it.
        service:
            The :class:`~repro.service.OrderingService` to route
            eigensolves through.  ``None`` creates a private
            memory-only service; pass a shared one to pool solves
            across indexes (and give it a store for persistence).
        page_size, tree_order, buffer_capacity, cost_model:
            Storage-engine knobs, forwarded to the underlying
            :class:`~repro.query.LinearStore` (grid domains only; they
            are never touched unless a range query runs).
        """
        return cls(
            domain=as_domain(domain),
            mapping=(mapping if isinstance(mapping, LocalityMapping)
                     else make_mapping(mapping, config=config)),
            service=service if service is not None else OrderingService(),
            config=config,
            page_size=page_size,
            tree_order=tree_order,
            buffer_capacity=buffer_capacity,
            cost_model=cost_model,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def domain(self) -> Domain:
        """The indexed domain."""
        return self._domain

    @property
    def service(self) -> OrderingService:
        """The ordering service every spectral solve routes through."""
        return self._service

    @property
    def mapping(self) -> LocalityMapping:
        """The default mapping."""
        return self._default

    @property
    def order(self) -> LinearOrder:
        """The default mapping's order over the domain (lazy)."""
        return self._materialize(self._default).order

    @property
    def ranks(self) -> np.ndarray:
        """The default mapping's rank array.

        For grids, indexed by flat cell index; for point sets, by
        position in :attr:`~repro.geometry.PointSet.cells`; for graphs,
        by vertex id.
        """
        return self.order.ranks

    @property
    def provenance(self) -> Optional[OrderArtifact]:
        """Solve provenance of the default order, when available.

        Populated for cacheable spectral mappings served through the
        service (``capabilities.provenance``); ``None`` otherwise.
        """
        view = self._materialize(self._default)
        if view.artifact is None:
            # Idempotent (the service coalesces identical requests), so
            # a concurrent duplicate lookup resolves to the same value.
            view.artifact = self._artifact_for(view.mapping)
        return view.artifact

    @property
    def stats(self):
        """The service's :class:`~repro.service.ordering.ServiceStats`."""
        return self._service.stats

    def order_for(self, mapping: MappingSpec) -> LinearOrder:
        """The order of any mapping over this domain (cached per index).

        Resolution follows :func:`~repro.api.mappings.make_mapping` with
        the index's ``config`` applied to spectral names — so comparing
        mappings over one domain is a loop over names.  Thread-safe:
        concurrent first calls for one mapping materialize exactly one
        view (and, for non-cacheable mappings, pay exactly one solve).
        """
        mapping = self._resolve(mapping)
        return self._materialize(mapping).order

    def ranks_for(self, mapping: MappingSpec) -> np.ndarray:
        """:meth:`order_for` as a rank array."""
        return self.order_for(mapping).ranks

    def buffer_stats(self, mapping: Optional[MappingSpec] = None
                     ) -> Optional[BufferStats]:
        """Buffer-pool accounting of one mapping's store, if it exists.

        ``None`` when the index was built without ``buffer_capacity``
        or the mapping's store has not served a range query yet.  A
        pure observer: it only *peeks* at the view table (never
        materializes a view or store, so it can never trigger a
        solve).  Under concurrent queries the snapshot obeys the
        conservation law ``hits + misses == accesses`` exactly (the
        pool is locked).
        """
        resolved = (self._default if mapping is None
                    else self._resolve(mapping))
        with self._lock:
            view = self._views.get(self._view_key(resolved))
        if view is None or view.store is None:
            return None
        return view.store.buffer_stats()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range(self, box, *, plan: str = "span-scan",
              mapping: Optional[MappingSpec] = None) -> QueryExecution:
        """Execute one axis-aligned range query (grid domains).

        ``box`` is a :class:`~repro.geometry.Box` or a ``(lo, hi)``
        corner pair.  See :meth:`~repro.query.LinearStore.range_query`
        for plans and accounting.
        """
        view = self._view_for(mapping)
        return self._range_on(view, box, plan)

    def workload(self, boxes: Sequence, *, plan: str = "span-scan",
                 mapping: Optional[MappingSpec] = None,
                 parallelism: Optional[int] = None) -> WorkloadReport:
        """Run a range-query stream and aggregate the I/O accounting.

        ``parallelism`` (default: ``REPRO_QUERY_WORKERS``, else
        sequential) fans the stream across worker threads; see
        :meth:`~repro.query.LinearStore.execute_workload` for the
        accounting contract under concurrency.
        """
        view = self._view_for(mapping)
        store = self._store_for(view)
        return store.execute_workload(
            [self._as_box(b) for b in boxes], plan=plan,
            parallelism=resolve_parallelism(parallelism),
        )

    def nn(self, cell, k: int, *, window: Optional[int] = None,
           mapping: Optional[MappingSpec] = None) -> NNResult:
        """k-nearest-neighbour search through the rank window.

        Served on grid domains (``cell`` is a flat index or coordinate
        tuple) and point-set domains (``cell`` must be one of the
        occupied cells; neighbours are drawn from the occupied cells
        only, and the returned indices are flat *grid* indices).  With
        ``window=None`` the examined window doubles until it holds at
        least ``k`` candidates; candidates are re-ranked by true
        Manhattan distance and the nearest ``k`` returned.
        """
        view = self._view_for(mapping)
        return self._nn_on(view, cell, k, window)

    def join(self, cells_a: Sequence[int], cells_b: Sequence[int], *,
             epsilon: int, window: int,
             mapping: Optional[MappingSpec] = None) -> JoinReport:
        """Window spatial join of two cell sets, scored against truth.

        Served on grid domains and point-set domains; on a point set
        both cell lists must be subsets of the occupied cells (ranks
        exist only for those).
        """
        view = self._view_for(mapping)
        return self._join_on(view, cells_a, cells_b, epsilon, window)

    def query_many(self, queries: Sequence[Query], *,
                   parallelism: Optional[int] = None) -> List:
        """Execute a heterogeneous query batch; results align with input.

        Order acquisition is batched: every not-yet-materialized
        cacheable spectral mapping the batch references goes through
        :meth:`~repro.service.OrderingService.order_many` in one call,
        so K same-topology configurations share a single graph build
        (and cache hits skip even that).

        Parameters
        ----------
        parallelism:
            Worker threads executing the batch after order acquisition.
            ``None`` defers to the ``REPRO_QUERY_WORKERS`` environment
            variable, else runs sequentially; an explicit integer >= 1
            wins over both.  Query *results* are bit-identical to the
            sequential path at any worker count (each query reads only
            immutable orders and per-store structures).  The one
            interleaving-dependent quantity is shared-buffer
            attribution when the index was built with
            ``buffer_capacity``: which query a buffer hit lands on
            depends on execution order, while the pool totals stay
            exact (``hits + misses == accesses``).
        """
        queries = self._coerce_queries(queries)
        workers = resolve_parallelism(parallelism)
        with span("api.query_many", batch=len(queries),
                  parallelism=workers):
            views = self._views_for(queries, parallelism=workers)

            def run(pair) -> object:
                view, query = pair
                return self._execute_query(view, query)

            return map_in_threads(run, list(zip(views, queries)),
                                  workers)

    # ------------------------------------------------------------------
    # Batch internals (shared with the asyncio facade)
    # ------------------------------------------------------------------
    def _coerce_queries(self, queries: Sequence[Query]) -> List[Query]:
        queries = list(queries)
        for query in queries:
            if not isinstance(query, (RangeQuery, NNQuery, JoinQuery)):
                raise InvalidParameterError(
                    f"unknown query type {type(query).__name__}; expected "
                    "RangeQuery, NNQuery or JoinQuery"
                )
        return queries

    def _views_for(self, queries: Sequence[Query],
                   parallelism: int = 1) -> List[_MappingView]:
        """Resolve and materialize every view a coerced batch needs.

        Order acquisition batches through the service; stores backing
        range queries are prebuilt here so worker threads execute pure
        query code (first-touch store builds never serialize the pool).
        ``parallelism`` also fans the *non-batchable* materializations
        (non-cacheable mappings, per-mapping services, curve encodes)
        across workers — eigensolves spend their time in GIL-releasing
        BLAS kernels, so a batch spanning K independent mappings scales
        with cores even though each solve is single-threaded Python.
        """
        mappings = [self._default if query.mapping is None
                    else self._resolve(query.mapping)
                    for query in queries]
        self._materialize_many(mappings, parallelism=parallelism)
        views = [self._materialize(mapping) for mapping in mappings]
        for query, view in zip(queries, views):
            if isinstance(query, RangeQuery):
                self._store_for(view)
        return views

    def _execute_query(self, view: _MappingView, query: Query):
        if isinstance(query, RangeQuery):
            return self._range_on(view, query.box, query.plan)
        if isinstance(query, NNQuery):
            return self._nn_on(view, query.cell, query.k, query.window)
        return self._join_on(view, query.cells_a, query.cells_b,
                             query.epsilon, query.window)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(self, spec: MappingSpec) -> LocalityMapping:
        if isinstance(spec, LocalityMapping):
            return spec
        if isinstance(spec, SpectralConfig):
            # The spec *is* the full spectral configuration; the
            # index-level config only fills in for bare names.
            return make_mapping(spec)
        return make_mapping(spec, config=self._config)

    def _view_key(self, mapping: LocalityMapping) -> Tuple:
        identity = mapping.cache_identity()
        if identity is not None:
            return identity
        return ("instance", id(mapping))

    def _artifact_for(self, mapping: LocalityMapping
                      ) -> Optional[OrderArtifact]:
        """Provenance for a cacheable spectral mapping, else ``None``."""
        if not (isinstance(mapping, SpectralMapping)
                and mapping.algorithm.cacheable):
            return None
        service = mapping.service or self._service
        if isinstance(self._domain, Grid):
            return service.grid_artifact(self._domain, mapping.algorithm)
        if isinstance(self._domain, Graph):
            return service.graph_artifact(self._domain, mapping.algorithm)
        return None

    def _build_view(self, mapping: LocalityMapping) -> _MappingView:
        """Compute one view (runs with the index lock released)."""
        with span("api.materialize", mapping=mapping.name):
            artifact = self._artifact_for(mapping)
            if artifact is not None:
                order = artifact.order
            else:
                order = mapping.order_domain(self._domain,
                                             service=self._service)
            return _MappingView(mapping=mapping, order=order,
                                artifact=artifact)

    def _materialize(self, mapping: LocalityMapping) -> _MappingView:
        """The view for ``mapping``, materialized at most once.

        Single-flight (the :class:`~repro.service.OrderingService`
        pattern): concurrent first requests elect a leader that
        computes outside the lock; waiters reuse its view.  This is
        what keeps *non-cacheable* mappings — which the service cannot
        coalesce — at exactly one solve per index, and prevents
        duplicate :class:`~repro.query.LinearStore` materializations
        for everything else.
        """
        key = self._view_key(mapping)
        while True:
            with self._lock:
                view = self._views.get(key)
                if view is not None:
                    return view
                flight = self._view_flights.get(key)
                if flight is None:
                    mine = _ViewFlight()
                    self._view_flights[key] = mine
            if flight is None:
                try:
                    view = self._build_view(mapping)
                    mine.view = view
                    with self._lock:
                        self._views[key] = view
                    return view
                finally:
                    with self._lock:
                        self._view_flights.pop(key, None)
                    mine.event.set()
            flight.event.wait()
            if flight.view is not None:
                return flight.view
            # Leader failed; loop to retry (one waiter becomes leader).

    def _materialize_many(self, mappings: Sequence[LocalityMapping],
                          parallelism: int = 1) -> None:
        """Materialize a batch, claiming flights so threads coordinate.

        Keys already materialized (or in flight elsewhere) are skipped;
        the remainder are claimed as this thread's flights, solved —
        cacheable spectral mappings through one
        :meth:`~repro.service.OrderingService.order_many` call, the
        rest directly (across ``parallelism`` workers) — and published
        one by one, releasing each flight's waiters as soon as its view
        exists.
        """
        claimed: Dict[Tuple, Tuple[LocalityMapping, _ViewFlight]] = {}
        with self._lock:
            for mapping in mappings:
                key = self._view_key(mapping)
                if (key in self._views or key in self._view_flights
                        or key in claimed):
                    continue
                flight = _ViewFlight()
                self._view_flights[key] = flight
                claimed[key] = (mapping, flight)
        if not claimed:
            return
        try:
            # Batch every cacheable spectral mapping the service can
            # serve through one order_many call (one graph build per
            # topology).
            batch: List[Tuple[Tuple, LocalityMapping]] = []
            if isinstance(self._domain, (Grid, Graph)):
                batch = [
                    (key, m) for key, (m, _) in claimed.items()
                    if isinstance(m, SpectralMapping)
                    and m.algorithm.cacheable and m.service is None
                ]
            if len(batch) > 1:
                requests = [OrderRequest(self._domain, m.algorithm.config)
                            for _, m in batch]
                orders = self._service.order_many(requests)
                for (key, m), order in zip(batch, orders):
                    self._publish_view(
                        key, _MappingView(mapping=m, order=order),
                        claimed[key][1])
            with self._lock:
                remaining = [(key, mapping, flight)
                             for key, (mapping, flight) in claimed.items()
                             if key not in self._views]

            def build(item) -> None:
                key, mapping, flight = item
                self._publish_view(key, self._build_view(mapping),
                                   flight)

            map_in_threads(build, remaining, parallelism)
        finally:
            # Release any flight left unresolved (a failure above):
            # waiters observe view=None and retry as leaders.
            leftover = []
            with self._lock:
                for key, (_, flight) in claimed.items():
                    if self._view_flights.get(key) is flight:
                        self._view_flights.pop(key, None)
                        leftover.append(flight)
            for flight in leftover:
                flight.event.set()

    def _publish_view(self, key: Tuple, view: _MappingView,
                      flight: _ViewFlight) -> None:
        with self._lock:
            self._views[key] = view
            self._view_flights.pop(key, None)
        flight.view = view
        flight.event.set()

    def _view_for(self, spec: Optional[MappingSpec]) -> _MappingView:
        mapping = (self._default if spec is None else self._resolve(spec))
        return self._materialize(mapping)

    def _coordinates(self) -> np.ndarray:
        """The (n, ndim) coordinate matrix of the domain's cells.

        Cached: the domain is immutable and a batch of nn queries must
        not rebuild it per query.  Built under the index lock so
        concurrent first queries compute it once.
        """
        with self._lock:
            if self._coords is None:
                self._coords = self._domain.coordinates()
            return self._coords

    def _require_grid(self, operation: str) -> Grid:
        if not isinstance(self._domain, Grid):
            raise DomainError(
                f"{operation} queries require a Grid domain; this index "
                f"holds a {type(self._domain).__name__} (order/ranks are "
                "still available)"
            )
        return self._domain

    @staticmethod
    def _as_box(box) -> Box:
        if isinstance(box, Box):
            return box
        if isinstance(box, (tuple, list)) and len(box) == 2:
            lo, hi = box
            return Box(lo, hi)
        raise InvalidParameterError(
            "box must be a Box or a (lo, hi) corner pair, "
            f"got {type(box).__name__}"
        )

    def _store_for(self, view: _MappingView) -> LinearStore:
        grid = self._require_grid("range")
        store = view.store
        if store is None:
            with view.store_lock:
                if view.store is None:
                    with span("api.store_build",
                              mapping=view.mapping.name):
                        view.store = LinearStore._from_api(
                            grid, view.mapping, order=view.order,
                            page_size=self._page_size,
                            tree_order=self._tree_order,
                            buffer_capacity=self._buffer_capacity,
                            cost_model=self._cost_model,
                        )
                store = view.store
        return store

    def _range_on(self, view: _MappingView, box, plan: str
                  ) -> QueryExecution:
        store = self._store_for(view)
        with span("api.range", plan=plan), Timer() as timer:
            execution = store.range_query(self._as_box(box), plan=plan)
        _QUERY_SECONDS.observe(timer.seconds, op="range")
        return execution

    def _nn_on(self, view: _MappingView, cell, k: int,
               window: Optional[int]) -> NNResult:
        with span("api.nn", k=k), Timer() as timer:
            result = self._nn_impl(view, cell, k, window)
        _QUERY_SECONDS.observe(timer.seconds, op="nn")
        return result

    def _nn_impl(self, view: _MappingView, cell, k: int,
                 window: Optional[int]) -> NNResult:
        domain = self._domain
        if isinstance(domain, Grid):
            grid, cells = domain, None
        elif isinstance(domain, PointSet):
            grid, cells = domain.grid, domain.cells
        else:
            raise DomainError(
                "nn queries require a Grid or PointSet domain; this "
                f"index holds a {type(domain).__name__} (order/ranks "
                "are still available)"
            )
        if not isinstance(cell, (int, np.integer)):
            cell = grid.index_of(cell)
        cell = int(cell)
        if cells is None:
            if not 0 <= cell < grid.size:
                raise DomainError(
                    f"cell {cell} outside grid of size {grid.size}"
                )
            pos, n = cell, grid.size
        else:
            pos = int(np.searchsorted(cells, cell))
            if pos == len(cells) or int(cells[pos]) != cell:
                raise DomainError(
                    f"cell {cell} is not occupied in this point set"
                )
            n = len(cells)
        if not 1 <= k < n:
            raise InvalidParameterError(
                f"k must be in [1, {n - 1}], got {k}"
            )
        ranks = view.ranks
        if window is None:
            width = max(int(k), 1)
            candidates = window_candidates(ranks, pos, width)
            while len(candidates) < k and width < n:
                width *= 2
                candidates = window_candidates(ranks, pos, width)
        else:
            width = int(window)
            candidates = window_candidates(ranks, pos, width)
        coords = self._coordinates()
        distances = np.abs(coords[candidates] - coords[pos]).sum(axis=1)
        nearest = candidates[np.lexsort((candidates, distances))][:k]
        if cells is not None:
            # Positions -> flat grid indices; ascending position equals
            # ascending flat index (cells is sorted), so tie-breaking by
            # position above is tie-breaking by cell id.
            nearest = cells[nearest]
        return NNResult(neighbors=nearest, window=width,
                        candidates=len(candidates))

    def _join_on(self, view: _MappingView, cells_a, cells_b,
                 epsilon: int, window: int) -> JoinReport:
        with span("api.join", epsilon=epsilon,
                  window=window), Timer() as timer:
            report = self._join_impl(view, cells_a, cells_b, epsilon,
                                     window)
        _QUERY_SECONDS.observe(timer.seconds, op="join")
        return report

    def _join_impl(self, view: _MappingView, cells_a, cells_b,
                   epsilon: int, window: int) -> JoinReport:
        domain = self._domain
        if isinstance(domain, Grid):
            return window_join_report(domain, view.ranks, cells_a,
                                      cells_b, epsilon, window)
        if isinstance(domain, PointSet):
            grid = domain.grid
            occupied = domain.cells
            full = np.full(grid.size, -1, dtype=np.int64)
            full[occupied] = view.ranks
            for name, arr in (("cells_a", cells_a), ("cells_b", cells_b)):
                values = np.asarray(arr, dtype=np.int64)
                pos = np.searchsorted(occupied, values)
                member = ((pos < len(occupied))
                          & (occupied[np.minimum(pos, len(occupied) - 1)]
                             == values))
                if not member.all():
                    missing = values[~member]
                    raise DomainError(
                        f"{name} must be occupied cells of this point "
                        f"set; {missing[:5].tolist()} are not"
                    )
            # The sentinel ranks of unoccupied cells are never read:
            # both cell lists were just proven subsets of the occupied
            # set, whose ranks were scattered above.
            return window_join_report(grid, full, cells_a, cells_b,
                                      epsilon, window)
        raise DomainError(
            "join queries require a Grid or PointSet domain; this "
            f"index holds a {type(domain).__name__} (order/ranks are "
            "still available)"
        )

    def __repr__(self) -> str:
        domain = (f"grid{self._domain.shape}"
                  if isinstance(self._domain, Grid)
                  else type(self._domain).__name__)
        with self._lock:
            views = len(self._views)
        return (f"SpectralIndex(domain={domain}, "
                f"mapping={self._default.name!r}, "
                f"views={views})")

"""SpectralIndex: the one front door over the whole pipeline.

The paper's pitch is that the spectral order is a drop-in replacement
for fractal orders; this facade makes the drop-in literal.  One call —

    index = SpectralIndex.build((32, 32))

— composes the domain (:mod:`repro.api.domains`), the mapping
(:mod:`repro.api.mappings`), the caching/batching
:class:`~repro.service.OrderingService`, the page layout and B+-tree
(:class:`~repro.query.LinearStore`), and the query machinery behind one
object with ``range(...)``, ``nn(...)``, ``join(...)``, and the
vectorized ``query_many([...])``.

Batch-first by construction: every order the index needs flows through
the service (concurrent misses on one fingerprint coalesce into a
single eigensolve), and ``query_many`` routes order acquisition through
:meth:`~repro.service.OrderingService.order_many`, so a batch spanning
K same-topology spectral configurations pays one graph build instead of
K.  Non-default mappings are materialized lazily and cached per index,
so comparing mappings over one domain — the shape of every figure
harness — is a loop over ``ranks_for(name)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.domains import Domain, DomainLike, as_domain
from repro.api.mappings import MappingSpec, make_mapping
from repro.api.queries import (
    JoinQuery,
    NNQuery,
    NNResult,
    Query,
    RangeQuery,
)
from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralConfig
from repro.errors import DomainError, InvalidParameterError
from repro.geometry.boxes import Box
from repro.geometry.grid import Grid
from repro.graph.adjacency import Graph
from repro.mapping.interface import LocalityMapping, SpectralMapping
from repro.query.engine import LinearStore, QueryExecution, WorkloadReport
from repro.query.join import JoinReport, window_join_report
from repro.query.nn import window_candidates
from repro.service.artifacts import OrderArtifact
from repro.service.ordering import OrderingService, OrderRequest
from repro.storage.disk import DiskCostModel


@dataclass
class _MappingView:
    """One mapping materialized against the index's domain."""

    mapping: LocalityMapping
    order: LinearOrder
    artifact: Optional[OrderArtifact] = None
    store: Optional[LinearStore] = None

    @property
    def ranks(self) -> np.ndarray:
        return self.order.ranks


class SpectralIndex:
    """A built index over one domain: ordering, layout, and queries.

    Construct with :meth:`build`; the constructor itself is the worker
    behind it and expects pre-coerced arguments.

    Examples
    --------
    >>> index = SpectralIndex.build((6, 6))
    >>> int(index.ranks.shape[0])
    36
    >>> index.mapping.name
    'spectral'
    """

    def __init__(self, domain: Domain, mapping: LocalityMapping,
                 service: OrderingService,
                 config: Optional[SpectralConfig],
                 page_size: int, tree_order: int,
                 buffer_capacity: Optional[int],
                 cost_model: Optional[DiskCostModel]):
        self._domain = domain
        self._service = service
        self._config = config
        self._page_size = int(page_size)
        self._tree_order = int(tree_order)
        self._buffer_capacity = buffer_capacity
        self._cost_model = cost_model
        self._views: Dict[Tuple, _MappingView] = {}
        self._coords: Optional[np.ndarray] = None
        # The default order is materialized on first access, not here:
        # an index used only to compare curve mappings must not pay a
        # spectral eigensolve at build time.
        self._default = mapping

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, domain: DomainLike, mapping: MappingSpec = "spectral",
              *, config: Optional[SpectralConfig] = None,
              service: Optional[OrderingService] = None,
              page_size: int = 16, tree_order: int = 32,
              buffer_capacity: Optional[int] = None,
              cost_model: Optional[DiskCostModel] = None
              ) -> "SpectralIndex":
        """Build an index over ``domain`` — the unified entry point.

        Parameters
        ----------
        domain:
            A :class:`~repro.geometry.Grid`, a
            :class:`~repro.geometry.PointSet`, a
            :class:`~repro.graph.Graph`, or a plain shape tuple
            (promoted to a grid).
        mapping:
            The default mapping: a registry name, a
            :class:`~repro.core.spectral.SpectralConfig`, or a mapping
            instance.  Defaults to the paper's spectral mapping.
        config:
            Spectral configuration applied to every spectral-family
            mapping this index resolves by name (including per-query
            mappings in :meth:`query_many`); curve names ignore it.
        service:
            The :class:`~repro.service.OrderingService` to route
            eigensolves through.  ``None`` creates a private
            memory-only service; pass a shared one to pool solves
            across indexes (and give it a store for persistence).
        page_size, tree_order, buffer_capacity, cost_model:
            Storage-engine knobs, forwarded to the underlying
            :class:`~repro.query.LinearStore` (grid domains only; they
            are never touched unless a range query runs).
        """
        return cls(
            domain=as_domain(domain),
            mapping=(mapping if isinstance(mapping, LocalityMapping)
                     else make_mapping(mapping, config=config)),
            service=service if service is not None else OrderingService(),
            config=config,
            page_size=page_size,
            tree_order=tree_order,
            buffer_capacity=buffer_capacity,
            cost_model=cost_model,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def domain(self) -> Domain:
        """The indexed domain."""
        return self._domain

    @property
    def service(self) -> OrderingService:
        """The ordering service every spectral solve routes through."""
        return self._service

    @property
    def mapping(self) -> LocalityMapping:
        """The default mapping."""
        return self._default

    @property
    def order(self) -> LinearOrder:
        """The default mapping's order over the domain (lazy)."""
        return self._materialize(self._default).order

    @property
    def ranks(self) -> np.ndarray:
        """The default mapping's rank array.

        For grids, indexed by flat cell index; for point sets, by
        position in :attr:`~repro.geometry.PointSet.cells`; for graphs,
        by vertex id.
        """
        return self.order.ranks

    @property
    def provenance(self) -> Optional[OrderArtifact]:
        """Solve provenance of the default order, when available.

        Populated for cacheable spectral mappings served through the
        service (``capabilities.provenance``); ``None`` otherwise.
        """
        view = self._materialize(self._default)
        if view.artifact is None:
            view.artifact = self._artifact_for(view.mapping)
        return view.artifact

    @property
    def stats(self):
        """The service's :class:`~repro.service.ordering.ServiceStats`."""
        return self._service.stats

    def order_for(self, mapping: MappingSpec) -> LinearOrder:
        """The order of any mapping over this domain (cached per index).

        Resolution follows :func:`~repro.api.mappings.make_mapping` with
        the index's ``config`` applied to spectral names — so comparing
        mappings over one domain is a loop over names.
        """
        mapping = self._resolve(mapping)
        return self._materialize(mapping).order

    def ranks_for(self, mapping: MappingSpec) -> np.ndarray:
        """:meth:`order_for` as a rank array."""
        return self.order_for(mapping).ranks

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range(self, box, *, plan: str = "span-scan",
              mapping: Optional[MappingSpec] = None) -> QueryExecution:
        """Execute one axis-aligned range query (grid domains).

        ``box`` is a :class:`~repro.geometry.Box` or a ``(lo, hi)``
        corner pair.  See :meth:`~repro.query.LinearStore.range_query`
        for plans and accounting.
        """
        view = self._view_for(mapping)
        return self._range_on(view, box, plan)

    def workload(self, boxes: Sequence, *, plan: str = "span-scan",
                 mapping: Optional[MappingSpec] = None) -> WorkloadReport:
        """Run a range-query stream and aggregate the I/O accounting."""
        view = self._view_for(mapping)
        store = self._store_for(view)
        return store.execute_workload([self._as_box(b) for b in boxes],
                                      plan=plan)

    def nn(self, cell, k: int, *, window: Optional[int] = None,
           mapping: Optional[MappingSpec] = None) -> NNResult:
        """k-nearest-neighbour search through the rank window (grids).

        ``cell`` is a flat index or coordinate tuple.  With
        ``window=None`` the examined window doubles until it holds at
        least ``k`` candidates; candidates are re-ranked by true
        Manhattan distance and the nearest ``k`` returned.
        """
        view = self._view_for(mapping)
        return self._nn_on(view, cell, k, window)

    def join(self, cells_a: Sequence[int], cells_b: Sequence[int], *,
             epsilon: int, window: int,
             mapping: Optional[MappingSpec] = None) -> JoinReport:
        """Window spatial join of two cell sets, scored against truth."""
        view = self._view_for(mapping)
        return self._join_on(view, cells_a, cells_b, epsilon, window)

    def query_many(self, queries: Sequence[Query]) -> List:
        """Execute a heterogeneous query batch; results align with input.

        Order acquisition is batched: every not-yet-materialized
        cacheable spectral mapping the batch references goes through
        :meth:`~repro.service.OrderingService.order_many` in one call,
        so K same-topology configurations share a single graph build
        (and cache hits skip even that).
        """
        queries = list(queries)
        mappings: List[LocalityMapping] = []
        for query in queries:
            if not isinstance(query, (RangeQuery, NNQuery, JoinQuery)):
                raise InvalidParameterError(
                    f"unknown query type {type(query).__name__}; expected "
                    "RangeQuery, NNQuery or JoinQuery"
                )
            mappings.append(self._default if query.mapping is None
                            else self._resolve(query.mapping))
        self._materialize_many(mappings)
        results = []
        for query, mapping in zip(queries, mappings):
            view = self._views[self._view_key(mapping)]
            if isinstance(query, RangeQuery):
                results.append(self._range_on(view, query.box, query.plan))
            elif isinstance(query, NNQuery):
                results.append(self._nn_on(view, query.cell, query.k,
                                           query.window))
            else:
                results.append(self._join_on(view, query.cells_a,
                                             query.cells_b, query.epsilon,
                                             query.window))
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(self, spec: MappingSpec) -> LocalityMapping:
        if isinstance(spec, LocalityMapping):
            return spec
        if isinstance(spec, SpectralConfig):
            # The spec *is* the full spectral configuration; the
            # index-level config only fills in for bare names.
            return make_mapping(spec)
        return make_mapping(spec, config=self._config)

    def _view_key(self, mapping: LocalityMapping) -> Tuple:
        identity = mapping.cache_identity()
        if identity is not None:
            return identity
        return ("instance", id(mapping))

    def _artifact_for(self, mapping: LocalityMapping
                      ) -> Optional[OrderArtifact]:
        """Provenance for a cacheable spectral mapping, else ``None``."""
        if not (isinstance(mapping, SpectralMapping)
                and mapping.algorithm.cacheable):
            return None
        service = mapping.service or self._service
        if isinstance(self._domain, Grid):
            return service.grid_artifact(self._domain, mapping.algorithm)
        if isinstance(self._domain, Graph):
            return service.graph_artifact(self._domain, mapping.algorithm)
        return None

    def _materialize(self, mapping: LocalityMapping) -> _MappingView:
        key = self._view_key(mapping)
        view = self._views.get(key)
        if view is not None:
            return view
        artifact = self._artifact_for(mapping)
        if artifact is not None:
            order = artifact.order
        else:
            order = mapping.order_domain(self._domain,
                                         service=self._service)
        view = _MappingView(mapping=mapping, order=order,
                            artifact=artifact)
        self._views[key] = view
        return view

    def _materialize_many(self, mappings: Sequence[LocalityMapping]
                          ) -> None:
        pending: Dict[Tuple, LocalityMapping] = {}
        for mapping in mappings:
            key = self._view_key(mapping)
            if key not in self._views and key not in pending:
                pending[key] = mapping
        # Batch every cacheable spectral mapping the service can serve
        # through one order_many call (one graph build per topology).
        batch: List[Tuple[Tuple, LocalityMapping]] = []
        if isinstance(self._domain, (Grid, Graph)):
            batch = [
                (key, m) for key, m in pending.items()
                if isinstance(m, SpectralMapping)
                and m.algorithm.cacheable and m.service is None
            ]
        if len(batch) > 1:
            requests = [OrderRequest(self._domain, m.algorithm.config)
                        for _, m in batch]
            orders = self._service.order_many(requests)
            for (key, m), order in zip(batch, orders):
                self._views[key] = _MappingView(mapping=m, order=order)
                del pending[key]
        for mapping in pending.values():
            self._materialize(mapping)

    def _view_for(self, spec: Optional[MappingSpec]) -> _MappingView:
        mapping = (self._default if spec is None else self._resolve(spec))
        return self._materialize(mapping)

    def _grid_coordinates(self, grid: Grid) -> np.ndarray:
        # Cached: the domain is immutable and a batch of nn queries
        # must not rebuild the (n, ndim) coordinate matrix per query.
        if self._coords is None:
            self._coords = grid.coordinates()
        return self._coords

    def _require_grid(self, operation: str) -> Grid:
        if not isinstance(self._domain, Grid):
            raise DomainError(
                f"{operation} queries require a Grid domain; this index "
                f"holds a {type(self._domain).__name__} (order/ranks are "
                "still available)"
            )
        return self._domain

    @staticmethod
    def _as_box(box) -> Box:
        if isinstance(box, Box):
            return box
        if isinstance(box, (tuple, list)) and len(box) == 2:
            lo, hi = box
            return Box(lo, hi)
        raise InvalidParameterError(
            "box must be a Box or a (lo, hi) corner pair, "
            f"got {type(box).__name__}"
        )

    def _store_for(self, view: _MappingView) -> LinearStore:
        grid = self._require_grid("range")
        if view.store is None:
            view.store = LinearStore._from_api(
                grid, view.mapping, order=view.order,
                page_size=self._page_size, tree_order=self._tree_order,
                buffer_capacity=self._buffer_capacity,
                cost_model=self._cost_model,
            )
        return view.store

    def _range_on(self, view: _MappingView, box, plan: str
                  ) -> QueryExecution:
        store = self._store_for(view)
        return store.range_query(self._as_box(box), plan=plan)

    def _nn_on(self, view: _MappingView, cell, k: int,
               window: Optional[int]) -> NNResult:
        grid = self._require_grid("nn")
        if not isinstance(cell, (int, np.integer)):
            cell = grid.index_of(cell)
        cell = int(cell)
        if not 0 <= cell < grid.size:
            raise DomainError(
                f"cell {cell} outside grid of size {grid.size}"
            )
        if not 1 <= k < grid.size:
            raise InvalidParameterError(
                f"k must be in [1, {grid.size - 1}], got {k}"
            )
        ranks = view.ranks
        if window is None:
            width = max(int(k), 1)
            candidates = window_candidates(ranks, cell, width)
            while len(candidates) < k and width < grid.size:
                width *= 2
                candidates = window_candidates(ranks, cell, width)
        else:
            width = int(window)
            candidates = window_candidates(ranks, cell, width)
        coords = self._grid_coordinates(grid)
        distances = np.abs(coords[candidates] - coords[cell]).sum(axis=1)
        nearest = candidates[np.lexsort((candidates, distances))][:k]
        return NNResult(neighbors=nearest, window=width,
                        candidates=len(candidates))

    def _join_on(self, view: _MappingView, cells_a, cells_b,
                 epsilon: int, window: int) -> JoinReport:
        grid = self._require_grid("join")
        return window_join_report(grid, view.ranks, cells_a, cells_b,
                                  epsilon, window)

    def __repr__(self) -> str:
        domain = (f"grid{self._domain.shape}"
                  if isinstance(self._domain, Grid)
                  else type(self._domain).__name__)
        return (f"SpectralIndex(domain={domain}, "
                f"mapping={self._default.name!r}, "
                f"views={len(self._views)})")

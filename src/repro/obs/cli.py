"""``repro-stats``: inspect traces and metrics from the command line.

Subcommands
-----------
``trace FILE.jsonl``
    Render an exported trace file (``TraceCollector.export_jsonl`` /
    ``repro.obs.export_jsonl``) as indented per-trace trees.
``summary FILE.jsonl``
    Aggregate the same file per span name: count, total, mean and max
    duration — the quick "where did the time go" view.
``metrics [--connect HOST:PORT [--workers]]``
    Print a metric registry in Prometheus text format.  Without
    ``--connect``, this process's own registry (mostly a format smoke
    check).  With ``--connect``, scrape a live ``repro-serve --listen``
    server over its socket — the server's registry including the
    ``repro_net_*`` families, plus each worker's dump with
    ``--workers``.
``demo [--size N] [--out FILE.jsonl]``
    Build a small spectral index, run a traced query batch, and print
    the resulting trace tree plus the metric dump — an end-to-end
    smoke of the whole observability layer in one command.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.obs.metrics import dump_metrics
from repro.obs.tracing import (
    collector,
    format_trace,
    load_jsonl,
    phase_totals,
    tracing,
)


def _cmd_trace(args: argparse.Namespace) -> int:
    records = load_jsonl(args.file)
    if not records:
        print("no spans in %s" % args.file, file=sys.stderr)
        return 1
    print(format_trace(records))
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    records = load_jsonl(args.file)
    if not records:
        print("no spans in %s" % args.file, file=sys.stderr)
        return 1
    # name -> [count, total seconds, worst seconds]
    by_name: Dict[str, List[float]] = {}
    for record in records:
        entry = by_name.setdefault(record.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record.duration
        entry[2] = max(entry[2], record.duration)
    width = max(len(name) for name in by_name)
    print("%-*s  %7s  %10s  %10s  %10s" % (
        width, "span", "count", "total_ms", "mean_ms", "max_ms"))
    for name in sorted(by_name, key=lambda n: -by_name[n][1]):
        count, total, worst = by_name[name]
        print("%-*s  %7d  %10.3f  %10.3f  %10.3f" % (
            width, name, count, total * 1e3, total / count * 1e3,
            worst * 1e3))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.connect is None:
        sys.stdout.write(dump_metrics())
        return 0
    # Imported here: the local path must stay importable without the
    # serving stack (and numpy with it).
    from repro.errors import InvalidParameterError
    from repro.net import scrape_metrics
    from repro.net.config import parse_address

    try:
        host, port = parse_address(args.connect)
    except InvalidParameterError as exc:
        print(f"repro-stats: {exc}", file=sys.stderr)
        return 2
    try:
        text = scrape_metrics(host, port, workers=args.workers)
    except Exception as exc:
        print(f"repro-stats: failed to scrape {host}:{port}: {exc}",
              file=sys.stderr)
        return 1
    sys.stdout.write(text)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    # Imported here: the CLI module must stay importable without
    # pulling the whole pipeline in (and numpy with it).
    from repro.api import NNQuery, RangeQuery, SpectralIndex

    size = int(args.size)
    if size < 4:
        print("--size must be >= 4", file=sys.stderr)
        return 1
    with tracing():
        index = SpectralIndex.build((size, size))
        span_hi = max(2, size // 3)
        index.query_many([
            RangeQuery(box=((1, 1), (span_hi, span_hi))),
            NNQuery(cell=(1, 1), k=4),
            RangeQuery(box=((0, 0), (size - 1, 1))),
        ])
        records = collector().drain()
    print(format_trace(records))
    print()
    totals = phase_totals(records)
    for name in sorted(totals, key=lambda n: -totals[n]):
        print("%-24s %10.3f ms" % (name, totals[name] * 1e3))
    print()
    sys.stdout.write(dump_metrics())
    if args.out:
        from repro.obs.tracing import export_jsonl

        count = export_jsonl(records, args.out)
        print("\nwrote %d spans to %s" % (count, args.out))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description="Inspect repro traces and metrics.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser(
        "trace", help="render an exported JSONL trace as trees")
    p_trace.add_argument("file", help="JSONL span export")
    p_trace.set_defaults(func=_cmd_trace)

    p_summary = sub.add_parser(
        "summary", help="aggregate an exported JSONL trace per span name")
    p_summary.add_argument("file", help="JSONL span export")
    p_summary.set_defaults(func=_cmd_summary)

    p_metrics = sub.add_parser(
        "metrics", help="dump metrics (Prometheus text), local or from "
                        "a live server")
    p_metrics.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="scrape a running 'repro-serve --listen' server instead "
             "of this process")
    p_metrics.add_argument(
        "--workers", action="store_true",
        help="with --connect, also print each worker's metric dump")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_demo = sub.add_parser(
        "demo", help="run a small traced workload and print the trace")
    p_demo.add_argument("--size", default=12, type=int,
                        help="grid side length (default 12)")
    p_demo.add_argument("--out", default=None,
                        help="also export the spans to this JSONL file")
    p_demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""Process-wide metrics: thread-safe counters, gauges, and histograms.

Zero dependencies beyond the standard library.  The registry is the
aggregation point for every layer of the serving stack — solver
invocations, cache-tier outcomes, dispatch latency — and renders in
Prometheus text exposition format via :func:`dump_metrics`.

Overhead contract
-----------------
Metric updates are always on (there is no disable switch, mirroring the
pre-existing ``ServiceStats`` counters): a counter increment is one
lock acquisition plus a float add, a histogram observation adds one
``bisect``.  Both are O(100ns) and safe on every hot path instrumented
by this package.  Snapshots and rendering take the registry lock and
each family lock, so they never observe a torn update.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_right
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    TypeVar,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "registry",
    "dump_metrics",
]

# Latency buckets (seconds) spanning sub-100µs cache hits up to
# multi-second cold eigensolves.  Fixed at family creation: histograms
# never resize, so observation cost is constant.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: Mapping[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: Tuple[Tuple[str, str], ...]) -> str:
    if not key:
        return ""
    parts = []
    for name, value in key:
        escaped = value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        parts.append('%s="%s"' % (name, escaped))
    return "{%s}" % ",".join(parts)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Base class: a named family of label-keyed series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    # Subclasses implement ``_snapshot_locked()`` / ``_render_locked()``
    # under ``self._lock``.

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append("# HELP %s %s" % (self.name, self.help.replace("\n", " ")))
        lines.append("# TYPE %s %s" % (self.name, self.kind))
        with self._lock:
            lines.extend(self._render_locked())
        return lines

    def _snapshot_locked(self) -> Dict[str, object]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _render_locked(self) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError


_M = TypeVar("_M", bound=_Metric)


class _ValueMetric(_Metric):
    """Shared storage + rendering for one-number-per-series families
    (the former ``Gauge._render_locked = Counter._render_locked``
    cross-class method grafts, made an honest base class)."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}  # guarded-by: _lock

    def value(self, **labels: object) -> float:
        key = _label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _snapshot_locked(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "help": self.help,
            "series": {_format_labels(k) or "": v for k, v in self._values.items()},
        }

    def _render_locked(self) -> List[str]:
        return [
            "%s%s %s" % (self.name, _format_labels(key), _format_value(value))
            for key, value in sorted(self._values.items())
        ]


class Counter(_ValueMetric):
    """Monotonically increasing counter, optionally labelled.

    ``inc()`` is thread-safe; concurrent increments never lose counts
    (verified by the 8-thread hammer in ``tests/obs/test_metrics.py``).
    """

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_ValueMetric):
    """A value that can go up and down (pool sizes, inflight counts)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)


class _HistogramEntry:
    """One label-keyed series: per-bucket counts (plus ``+Inf``), the
    running sum, and the observation count."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, bucket_count: int) -> None:
        self.counts = [0] * (bucket_count + 1)
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket histogram with Prometheus cumulative rendering.

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    tail.  ``observe`` is one lock + one binary search, independent of
    bucket count.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self._series: Dict[Tuple[Tuple[str, str], ...], _HistogramEntry] = {}  # guarded-by: _lock

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        idx = bisect_right(self.buckets, value)
        with self._lock:
            entry = self._series.get(key)
            if entry is None:
                entry = _HistogramEntry(len(self.buckets))
                self._series[key] = entry
            entry.counts[idx] += 1
            entry.total += value
            entry.count += 1

    def count(self, **labels: object) -> int:
        key = _label_key(labels)
        with self._lock:
            entry = self._series.get(key)
            return entry.count if entry else 0

    def sum(self, **labels: object) -> float:
        key = _label_key(labels)
        with self._lock:
            entry = self._series.get(key)
            return entry.total if entry else 0.0

    def _snapshot_locked(self) -> Dict[str, object]:
        series = {}
        for key, entry in self._series.items():
            cumulative = []
            running = 0
            for c in entry.counts:
                running += c
                cumulative.append(running)
            series[_format_labels(key) or ""] = {
                "buckets": list(self.buckets),
                "cumulative": cumulative,
                "sum": entry.total,
                "count": entry.count,
            }
        return {"type": self.kind, "help": self.help, "series": series}

    def _render_locked(self) -> List[str]:
        lines = []
        for key, entry in sorted(self._series.items()):
            running = 0
            for bound, c in zip(self.buckets, entry.counts):
                running += c
                labels: Dict[str, object] = dict(key)
                labels["le"] = _format_value(bound)
                lines.append("%s_bucket%s %d" % (
                    self.name, _format_labels(_label_key(labels)), running))
            labels = dict(key)
            labels["le"] = "+Inf"
            running += entry.counts[-1]
            lines.append("%s_bucket%s %d" % (
                self.name, _format_labels(_label_key(labels)), running))
            lines.append("%s_sum%s %s" % (
                self.name, _format_labels(key), _format_value(entry.total)))
            lines.append("%s_count%s %d" % (
                self.name, _format_labels(key), entry.count))
        return lines


class MetricsRegistry:
    """Thread-safe collection of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice
    with the same name returns the same family (a name registered as a
    different kind raises), so modules can grab handles at import time.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}  # guarded-by: _lock

    def _get_or_create(self, cls: Type[_M], name: str, help: str,
                       **kwargs: Any) -> _M:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        "metric %r already registered as %s" % (name, existing.kind))
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def families(self) -> List[_Metric]:
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time copy of every family (never torn mid-update)."""
        out = {}
        for metric in self.families():
            with metric._lock:
                out[metric.name] = metric._snapshot_locked()
        return out

    def render(self) -> str:
        """Prometheus text exposition format (``text/plain; version=0.0.4``)."""
        lines: List[str] = []
        for metric in self.families():
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def dump_metrics(reg: Optional[MetricsRegistry] = None) -> str:
    """Render a registry (default: the process-wide one) in Prometheus
    text exposition format."""
    return (reg or _REGISTRY).render()

"""``repro.obs`` — zero-dependency observability for the serving stack.

Three pieces, all standard library only:

- :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  thread-safe counters, gauges, and fixed-bucket latency histograms,
  rendered in Prometheus text format by :func:`dump_metrics`.
- :mod:`repro.obs.tracing` — a context-manager :func:`span` API whose
  trace context propagates across ``map_in_threads`` fan-out and the
  pickle IPC boundary to ``repro.serve`` workers, producing stitched
  traces with JSONL export.
- :mod:`repro.obs.timers` — the shared monotonic :class:`Timer` used by
  calibration, the serve CLI, and benchmarks.

Tracing is off by default and free when off (one boolean check per span
site); metric updates are always on and cost one lock + add, the same
class of overhead as the ``ServiceStats`` counters they superseded.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS,
    registry,
    dump_metrics,
)
from repro.obs.tracing import (
    Span,
    SpanRecord,
    TraceContext,
    TraceCollector,
    span,
    tracing,
    tracing_enabled,
    enable_tracing,
    disable_tracing,
    current_context,
    use_context,
    capture_spans,
    remote_capture,
    collector,
    export_jsonl,
    load_jsonl,
    trace_tree,
    format_trace,
    phase_totals,
)
from repro.obs.timers import Timer, best_of

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "registry",
    "dump_metrics",
    "Span",
    "SpanRecord",
    "TraceContext",
    "TraceCollector",
    "span",
    "tracing",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "current_context",
    "use_context",
    "capture_spans",
    "remote_capture",
    "collector",
    "export_jsonl",
    "load_jsonl",
    "trace_tree",
    "format_trace",
    "phase_totals",
    "Timer",
    "best_of",
]

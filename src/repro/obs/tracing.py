"""Context-manager span tracing with cross-thread and cross-process
propagation.

The model is a trimmed-down OpenTelemetry: a *span* is a named, timed
unit of work with attributes; spans nest via a thread-local stack; all
spans sharing a ``trace_id`` form one *trace*.  The context propagates

- across ``map_in_threads`` fan-out (``repro.parallel`` captures
  :func:`current_context` at submit time and re-attaches it in worker
  threads), and
- across the pickle IPC boundary (``repro.serve`` ships a
  :class:`TraceContext` wire tuple inside ``TracedRequest`` and returns
  finished :class:`SpanRecord` tuples inside ``TracedResponse``),

so a single ``ProcessPoolFrontend.query_many`` call yields one stitched
trace from dispatcher to solver.

Overhead contract
-----------------
Tracing is **off by default**.  When disabled, :func:`span` performs a
single module-level boolean check and returns a shared no-op singleton
whose ``__enter__``/``__exit__``/``set_attribute`` do nothing — no
allocation, no clock read, no lock.  Instrumented hot paths therefore
cost one predicate per span site when tracing is off; the query-path
benchmark (``benchmarks/test_bench_tracing_overhead.py``) pins the
end-to-end overhead below 5%.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union, cast

#: Anything ``open()`` accepts for the JSONL import/export helpers.
_PathLike = Union[str, "os.PathLike[str]"]

__all__ = [
    "Span",
    "SpanRecord",
    "TraceContext",
    "TraceCollector",
    "span",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "tracing",
    "current_context",
    "use_context",
    "capture_spans",
    "remote_capture",
    "collector",
    "export_jsonl",
    "load_jsonl",
    "trace_tree",
    "format_trace",
    "phase_totals",
]


def _new_id() -> str:
    # A per-thread 64-bit counter seeded once from os.urandom: the same
    # uniqueness (random base per thread, monotone within it) without
    # paying a syscall on every span — ID generation is on the traced
    # hot path twice per root span.
    count = getattr(_LOCAL, "id_count", None)
    if count is None:
        _LOCAL.id_base = int.from_bytes(os.urandom(8), "big")
        count = 0
    count += 1
    _LOCAL.id_count = count
    return "%016x" % ((_LOCAL.id_base + count) & 0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class TraceContext:
    """Identity of an in-progress span, used to parent remote work.

    Picklable and tuple-convertible so it can ride inside the frozen
    request dataclasses of ``repro.serve.protocol``.
    """

    trace_id: str
    span_id: str

    def as_wire(self) -> Tuple[str, str]:
        return (self.trace_id, self.span_id)

    @classmethod
    def from_wire(cls, wire: Optional[Tuple[str, str]]) -> "Optional[TraceContext]":
        if wire is None:
            return None
        return cls(trace_id=wire[0], span_id=wire[1])


@dataclass
class SpanRecord:
    """A finished span.  Plain picklable data — this is both the
    in-memory record and the IPC/JSONL wire format."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_time: float          # epoch seconds (time.time)
    duration: float            # seconds (perf_counter delta)
    attributes: Dict[str, object] = field(default_factory=dict)
    status: str = "ok"
    error: Optional[str] = None
    pid: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_time": self.start_time,
            "duration": self.duration,
            "attributes": self.attributes,
            "status": self.status,
            "error": self.error,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpanRecord":
        """Build a record from a possibly sparse dict.

        Optional fields absent from the input (hand-written JSONL,
        exports from an older schema) fall back to their dataclass
        defaults instead of landing as ``None`` — a record with
        ``attributes=None`` or ``status=None`` breaks every consumer
        that iterates or compares them.
        """
        def pick(key: str, default: Any) -> Any:
            value = data.get(key)
            return default if value is None else value

        return cls(
            trace_id=pick("trace_id", ""),
            span_id=pick("span_id", ""),
            parent_id=cast(Optional[str], data.get("parent_id")),
            name=pick("name", ""),
            start_time=pick("start_time", 0.0),
            duration=pick("duration", 0.0),
            attributes=pick("attributes", {}),
            status=pick("status", "ok"),
            error=cast(Optional[str], data.get("error")),
            pid=pick("pid", 0),
        )


class TraceCollector:
    """Bounded, thread-safe ring of finished spans with JSONL export."""

    def __init__(self, maxlen: int = 4096) -> None:
        self._lock = threading.Lock()
        self._records: "deque[SpanRecord]" = deque(maxlen=maxlen)  # guarded-by: _lock

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def ingest(self, records: Iterable[SpanRecord]) -> None:
        """Merge foreign spans (e.g. shipped back from a worker process).

        Ingested spans also feed any active :func:`capture_spans`
        sinks: a capture scope that dispatches into the process fleet
        sees the workers' spans exactly as it sees local ones, so a
        socket server can forward a complete stitched trace.
        """
        records = list(records)
        with self._lock:
            self._records.extend(records)
        if _STATE.sinks:
            with _STATE.sink_lock:
                for sink in _STATE.sinks:
                    sink.extend(records)

    def spans(self, trace_id: Optional[str] = None) -> List[SpanRecord]:
        with self._lock:
            records = list(self._records)
        if trace_id is not None:
            records = [r for r in records if r.trace_id == trace_id]
        return records

    def trace_ids(self) -> List[str]:
        seen: List[str] = []
        for record in self.spans():
            if record.trace_id not in seen:
                seen.append(record.trace_id)
        return seen

    def drain(self) -> List[SpanRecord]:
        with self._lock:
            records = list(self._records)
            self._records.clear()
        return records

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def export_jsonl(self, path: _PathLike) -> int:
        return export_jsonl(self.spans(), path)


class _TracerState:
    def __init__(self) -> None:
        self.enabled = False
        self.collector = TraceCollector()
        self.sink_lock = threading.Lock()
        self.sinks: List[List[SpanRecord]] = []


_STATE = _TracerState()
_LOCAL = threading.local()

# The pid is stamped on every record; cache it and refresh after fork
# (spawned workers re-import and get their own value anyway).
_PID = os.getpid()
if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(
        after_in_child=lambda: globals().__setitem__("_PID", os.getpid()))


def _stack() -> List["Span"]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


def tracing_enabled() -> bool:
    return _STATE.enabled


def enable_tracing() -> None:
    _STATE.enabled = True


def disable_tracing() -> None:
    _STATE.enabled = False


class tracing:
    """Context manager enabling tracing for a scope (tests, benchmarks)."""

    def __enter__(self) -> TraceCollector:
        self._prev = _STATE.enabled
        _STATE.enabled = True
        return _STATE.collector

    def __exit__(self, *exc: object) -> bool:
        _STATE.enabled = self._prev
        return False


def collector() -> TraceCollector:
    """The process-wide trace collector."""
    return _STATE.collector


def current_context() -> Optional[TraceContext]:
    """Context of the innermost open span on this thread, falling back
    to an attached remote parent (see :func:`use_context`)."""
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        top = stack[-1]
        return TraceContext(trace_id=top.trace_id, span_id=top.span_id)
    return getattr(_LOCAL, "remote_parent", None)


class use_context:
    """Attach ``ctx`` as this thread's parent context for root spans.

    Used by ``map_in_threads`` (so fan-out threads continue the caller's
    trace) and by workers resuming a trace shipped over IPC.
    """

    def __init__(self, ctx: Optional[TraceContext]) -> None:
        self._ctx = ctx

    def __enter__(self) -> "use_context":
        self._prev = getattr(_LOCAL, "remote_parent", None)
        if self._ctx is not None:
            _LOCAL.remote_parent = self._ctx
        return self

    def __exit__(self, *exc: object) -> bool:
        _LOCAL.remote_parent = self._prev
        return False


class Span:
    """A recording span.  Use via :func:`span`::

        with span("service.solve", key=key) as sp:
            ...
            sp.set_attribute("backend", result.backend)

    The span times its body with ``perf_counter``, records the nesting
    parent from the thread-local stack, and on exit publishes a
    :class:`SpanRecord` to the process collector and any active capture
    sinks.  An exception escaping the body marks ``status="error"`` and
    does not swallow the exception.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attributes",
                 "_start_wall", "_start_perf")

    is_recording = True

    def __init__(self, name: str, attributes: Dict[str, object]) -> None:
        self.name = name
        self.attributes = dict(attributes)
        parent = current_context()
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = _new_id()
            self.parent_id = None
        self.span_id = _new_id()

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes: object) -> None:
        self.attributes.update(attributes)

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def __enter__(self) -> "Span":
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        _stack().append(self)
        return self

    def __exit__(self, exc_type: Optional[type],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> bool:
        duration = time.perf_counter() - self._start_perf
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        record = SpanRecord(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start_time=self._start_wall,
            duration=duration,
            attributes=self.attributes,
            status="error" if exc_type is not None else "ok",
            error=repr(exc) if exc is not None else None,
            pid=_PID,
        )
        _STATE.collector.add(record)
        if _STATE.sinks:
            with _STATE.sink_lock:
                for sink in _STATE.sinks:
                    sink.append(record)
        return False


class _NoopSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    is_recording = False

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def set_attributes(self, **attributes: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopSpan()


def span(name: str, **attributes: object) -> Union[Span, _NoopSpan]:
    """Open a span named ``name`` with initial ``attributes``.

    When tracing is disabled this is a no-op: one boolean check, then a
    shared singleton whose enter/exit do nothing (see the module
    docstring's overhead contract).
    """
    if not _STATE.enabled:
        return _NOOP
    return Span(name, attributes)


class capture_spans:
    """Capture every span finished process-wide while the scope is open.

    ``with capture_spans() as records: ...`` — ``records`` is a plain
    list that fills as spans close, including spans finished on other
    threads (``map_in_threads`` fan-out).  Intended for single-request
    scopes (worker processes handle one request at a time) and tests.
    """

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []

    def __enter__(self) -> List[SpanRecord]:
        with _STATE.sink_lock:
            _STATE.sinks.append(self.records)
        return self.records

    def __exit__(self, *exc: object) -> bool:
        with _STATE.sink_lock:
            try:
                _STATE.sinks.remove(self.records)
            except ValueError:
                pass
        return False


class remote_capture:
    """Worker-side scope for one trace-carrying IPC request.

    Temporarily enables tracing (regardless of the worker's own
    setting), attaches the shipped :class:`TraceContext` as the parent
    for root spans, and captures every span finished while handling the
    request so the worker can ship them back in the response.
    """

    def __init__(self, wire_ctx: Optional[Tuple[str, str]]) -> None:
        self._ctx = TraceContext.from_wire(wire_ctx)
        self._capture = capture_spans()
        self._use = use_context(self._ctx)

    def __enter__(self) -> List[SpanRecord]:
        self._prev_enabled = _STATE.enabled
        _STATE.enabled = True
        self._use.__enter__()
        return self._capture.__enter__()

    def __exit__(self, *exc: object) -> bool:
        self._capture.__exit__(*exc)
        self._use.__exit__(*exc)
        _STATE.enabled = self._prev_enabled
        return False


# ---------------------------------------------------------------------------
# Export / inspection helpers


#: One node of a rendered trace forest: a record and its children.
TraceNode = Tuple[SpanRecord, List["TraceNode"]]


def export_jsonl(records: Iterable[SpanRecord], path: _PathLike) -> int:
    """Write span records to ``path`` as JSON Lines.  Returns the count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record.as_dict(), sort_keys=True))
            fh.write("\n")
            n += 1
    return n


def load_jsonl(path: _PathLike) -> List[SpanRecord]:
    records: List[SpanRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(SpanRecord.from_dict(json.loads(line)))
    return records


def trace_tree(records: Iterable[SpanRecord]
               ) -> Dict[str, List[TraceNode]]:
    """Group records into ``(root, children)`` forests per trace.

    Returns ``{trace_id: [(record, [child_nodes...]), ...]}`` where each
    node is a ``(record, children)`` pair sorted by start time.  Spans
    whose parent is missing from the record set are treated as roots.
    """
    ordered = sorted(records, key=lambda r: (r.start_time, r.span_id))
    by_trace: Dict[str, List[SpanRecord]] = {}
    for record in ordered:
        by_trace.setdefault(record.trace_id, []).append(record)
    forests: Dict[str, List[TraceNode]] = {}
    for trace_id, group in by_trace.items():
        nodes: Dict[str, TraceNode] = {r.span_id: (r, [])
                                       for r in group}
        roots: List[TraceNode] = []
        for r in group:
            node = nodes[r.span_id]
            parent = nodes.get(r.parent_id) if r.parent_id else None
            if parent is not None:
                parent[1].append(node)
            else:
                roots.append(node)
        forests[trace_id] = roots
    return forests


def _format_node(node: TraceNode, depth: int,
                 lines: List[str]) -> None:
    record, children = node
    attrs = ""
    if record.attributes:
        attrs = "  " + " ".join(
            "%s=%s" % (k, v) for k, v in sorted(record.attributes.items()))
    marker = "" if record.status == "ok" else "  [%s]" % record.status
    lines.append("%s%-s  %.3fms  pid=%d%s%s" % (
        "  " * depth, record.name, record.duration * 1e3, record.pid,
        attrs, marker))
    for child in children:
        _format_node(child, depth + 1, lines)


def format_trace(records: Iterable[SpanRecord]) -> str:
    """Render records as indented per-trace trees (``repro-stats trace``)."""
    lines: List[str] = []
    for trace_id, roots in trace_tree(records).items():
        lines.append("trace %s" % trace_id)
        for root in roots:
            _format_node(root, 1, lines)
    return "\n".join(lines)


def phase_totals(records: Iterable[SpanRecord],
                 prefix: str = "") -> Dict[str, float]:
    """Total seconds per span name (optionally filtered by prefix).

    The per-phase breakdown recorded into ``BENCH_spectral.json`` by
    ``benchmarks/conftest.py``.
    """
    totals: Dict[str, float] = {}
    for record in records:
        if prefix and not record.name.startswith(prefix):
            continue
        totals[record.name] = totals.get(record.name, 0.0) + record.duration
    return totals

"""Shared wall-clock timing utilities.

Every user-facing timing in the repo (calibration, serve CLI warm-up,
benchmarks) goes through this module so reported numbers come from one
monotonic-clock code path (``time.perf_counter``).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Timer", "best_of"]


class Timer:
    """Context-manager stopwatch on the monotonic clock::

        with Timer() as t:
            work()
        print(t.seconds)

    ``seconds`` reads the elapsed time; inside the block it returns the
    running elapsed time, after exit the frozen total.
    """

    __slots__ = ("_start", "_elapsed")

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        # Exiting a timer that was never entered is a no-op, not a
        # TypeError on ``None`` arithmetic.
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None
        return False

    @property
    def seconds(self) -> float:
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed

    @property
    def millis(self) -> float:
        return self.seconds * 1e3


def best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Minimum wall time of ``fn`` over ``repeats`` runs, in seconds.

    The minimum (not mean) estimates the noise-free cost — the same
    convention ``repro-calibrate`` has always used.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    for _ in range(repeats):
        with Timer() as t:
            fn()
        best = min(best, t.seconds)
    return best

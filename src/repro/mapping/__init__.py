"""Unified mapping interface over spectral and curve orders."""

from repro.mapping.interface import (
    MAPPING_NAMES,
    PAPER_MAPPING_NAMES,
    CurveMapping,
    ExplicitMapping,
    LocalityMapping,
    MappingCapabilities,
    SpectralBisectionMapping,
    SpectralMapping,
    SpectralMultilevelMapping,
    paper_mappings,
)

__all__ = [
    "MAPPING_NAMES",
    "PAPER_MAPPING_NAMES",
    "CurveMapping",
    "ExplicitMapping",
    "LocalityMapping",
    "MappingCapabilities",
    "SpectralBisectionMapping",
    "SpectralMapping",
    "SpectralMultilevelMapping",
    "paper_mappings",
]

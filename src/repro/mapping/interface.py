"""One interface over every locality-preserving mapping.

Metrics, query engines, storage simulators, and experiment harnesses all
consume a :class:`LocalityMapping`: something that can produce a
:class:`~repro.core.ordering.LinearOrder` over the cells of a domain.
The two families —

* :class:`CurveMapping` (Sweep, Snake, Peano/Z-order, Gray, Hilbert,
  Diagonal), and
* :class:`SpectralMapping` (the paper's contribution)

— are thereby interchangeable everywhere, which is what lets each figure
harness be a single loop over mapping names.

Every mapping implements the unified :mod:`repro.api` ``Mapping``
protocol: it advertises :class:`MappingCapabilities` (batch encoding,
cacheability, provenance) and orders any member of the ``Domain`` union
— :class:`~repro.geometry.Grid`, :class:`~repro.geometry.PointSet`, or
:class:`~repro.graph.Graph` — through :meth:`LocalityMapping.order_domain`
(families that cannot serve a domain kind raise
:class:`~repro.errors.DomainError` instead of guessing).

Grids whose sides are not powers of two are handled the standard way for
bit-interleaved curves: cells are keyed on the enclosing power-of-two
cube and the keys are densified into ranks (exactly how Hilbert-packed
R-trees are built in practice).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.bisection import spectral_bisection_order
from repro.core.multilevel import multilevel_order
from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralLPM
from repro.curves.base import enclosing_bits
from repro.curves.registry import CURVE_NAMES, make_curve
from repro.curves.vectorized import batch_encoder
from repro.errors import DomainError, InvalidParameterError
from repro.geometry.grid import Grid
from repro.geometry.pointset import PointSet
from repro.graph.adjacency import Graph

#: Mapping names accepted by :func:`repro.api.make_mapping`.
MAPPING_NAMES = CURVE_NAMES + ("spectral", "spectral-rb", "spectral-ml")

#: The five mappings compared in the paper's Section 5.
PAPER_MAPPING_NAMES = ("sweep", "peano", "gray", "hilbert", "spectral")


@dataclass(frozen=True)
class MappingCapabilities:
    """What a mapping can do, declared rather than duck-probed.

    Attributes
    ----------
    batch_encode:
        The mapping can compute every cell's key in one vectorized pass
        (true for the bit-interleaved curves with a registered batch
        encoder; false for eigensolver-based orders).
    cacheable:
        The mapping's output is a pure function of a value-typed
        identity (a curve name, a :class:`~repro.core.spectral
        .SpectralConfig`), so cache layers may store and share its
        orders.  False for mappings carrying opaque state — callable
        weights, explicit probe vectors, precomputed orders.
    provenance:
        Orders obtained through an
        :class:`~repro.service.OrderingService` carry solve provenance
        (backend, ``lambda_2``, residual) as an
        :class:`~repro.service.OrderArtifact`.
    """

    batch_encode: bool = False
    cacheable: bool = True
    provenance: bool = False


class LocalityMapping(ABC):
    """A named way of linearizing a domain's cells.

    Orders are cached per grid: spectral orders cost an eigensolve and
    experiment harnesses ask for the same grid repeatedly.
    """

    def __init__(self) -> None:
        self._cache: Dict[Grid, LinearOrder] = {}

    @property
    @abstractmethod
    def name(self) -> str:
        """Registry / display name."""

    @property
    def capabilities(self) -> MappingCapabilities:
        """Declared capabilities (see :class:`MappingCapabilities`)."""
        return MappingCapabilities()

    def cache_identity(self):
        """A value-typed identity for order-sharing caches, or ``None``.

        Two mappings with equal identities produce bit-identical orders
        for every domain, so facades may share one materialized view
        between them.  ``None`` (the default) means the mapping carries
        state a value cannot represent — each instance must get its own
        view.
        """
        return None

    @abstractmethod
    def _compute_order(self, grid: Grid) -> LinearOrder:
        """Compute the order for a grid (uncached)."""

    def order_for_grid(self, grid: Grid) -> LinearOrder:
        """The linear order of ``grid``'s cells (cached)."""
        if grid not in self._cache:
            self._cache[grid] = self._compute_order(grid)
        return self._cache[grid]

    def ranks_for_grid(self, grid: Grid) -> np.ndarray:
        """Read-only rank array: ``ranks[flat_cell_index] = rank``."""
        return self.order_for_grid(grid).ranks

    # ------------------------------------------------------------------
    # The unified Domain entry point (the repro.api Mapping protocol)
    # ------------------------------------------------------------------
    def order_domain(self, domain, service=None) -> LinearOrder:
        """Order any member of the ``Domain`` union.

        ``domain`` is a :class:`~repro.geometry.Grid` (orders every
        cell), a :class:`~repro.geometry.PointSet` (orders positions in
        its canonical cell array), or a :class:`~repro.graph.Graph`
        (orders vertices).  ``service`` optionally routes cacheable
        spectral computation through an
        :class:`~repro.service.OrderingService`; families that have no
        use for it (curves are pure arithmetic) ignore it.  Domain kinds
        a family cannot serve raise
        :class:`~repro.errors.DomainError`.
        """
        if isinstance(domain, Grid):
            return self._order_grid_domain(domain, service)
        if isinstance(domain, PointSet):
            return self._order_point_set(domain, service)
        if isinstance(domain, Graph):
            return self._order_graph_domain(domain, service)
        raise InvalidParameterError(
            f"domain must be a Grid, PointSet or Graph, "
            f"got {type(domain).__name__}"
        )

    def _order_grid_domain(self, grid: Grid, service) -> LinearOrder:
        return self.order_for_grid(grid)

    def _order_point_set(self, points: PointSet, service) -> LinearOrder:
        raise DomainError(
            f"mapping {self.name!r} cannot order point-set domains"
        )

    def _order_graph_domain(self, graph: Graph, service) -> LinearOrder:
        raise DomainError(
            f"mapping {self.name!r} cannot order graph domains "
            "(it needs grid coordinates)"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class CurveMapping(LocalityMapping):
    """A space-filling-curve (or keyed) order as a mapping."""

    def __init__(self, curve_name: str):
        super().__init__()
        if curve_name not in CURVE_NAMES:
            raise InvalidParameterError(
                f"unknown curve {curve_name!r}; expected one of {CURVE_NAMES}"
            )
        self._curve_name = curve_name

    @property
    def name(self) -> str:
        return self._curve_name

    @property
    def capabilities(self) -> MappingCapabilities:
        return MappingCapabilities(
            batch_encode=batch_encoder(self._curve_name) is not None,
            cacheable=True,
            provenance=False,
        )

    def cache_identity(self):
        return ("curve", self._curve_name)

    def _curve_keys(self, grid: Grid, coords: np.ndarray) -> np.ndarray:
        """Curve keys of ``coords`` on the enclosing power-of-two cube."""
        bits = enclosing_bits(max(grid.shape))
        encoder = batch_encoder(self._curve_name)
        if encoder is not None and bits * grid.ndim <= 62:
            return encoder(coords, bits)
        curve = make_curve(self._curve_name, grid.ndim, bits)
        return np.fromiter(
            (curve.point_to_key(tuple(point)) for point in coords),
            dtype=np.int64, count=len(coords),
        )

    def _compute_order(self, grid: Grid) -> LinearOrder:
        keys = self._curve_keys(grid, grid.coordinates())
        # Densify: distinct keys -> ranks 0..n-1 preserving key order.
        perm = np.argsort(keys, kind="stable")
        return LinearOrder(perm)

    def _order_point_set(self, points: PointSet, service) -> LinearOrder:
        # A curve orders any subset the way it orders the full grid:
        # by key.  The induced order over subset positions is therefore
        # consistent with the full-grid ranks restricted to the subset.
        keys = self._curve_keys(points.grid, points.coordinates())
        return LinearOrder(np.argsort(keys, kind="stable"))


class SpectralMapping(LocalityMapping):
    """Spectral LPM as a mapping; forwards kwargs to :class:`SpectralLPM`.

    ``service`` optionally routes order computation through an
    :class:`~repro.service.ordering.OrderingService`, so identical
    (config, grid) requests across mappings, stores and harnesses share
    one eigensolve (and survive restarts when the service has a disk
    store).  Without a service each instance keeps only its private
    per-grid memo from :class:`LocalityMapping`.
    """

    def __init__(self, service=None, **spectral_kwargs):
        super().__init__()
        self._algorithm = SpectralLPM(**spectral_kwargs)
        self._service = service

    @property
    def name(self) -> str:
        return "spectral"

    @property
    def algorithm(self) -> SpectralLPM:
        return self._algorithm

    @property
    def service(self):
        """The attached ordering service, if any."""
        return self._service

    @property
    def capabilities(self) -> MappingCapabilities:
        return MappingCapabilities(
            batch_encode=False,
            cacheable=self._algorithm.cacheable,
            provenance=True,
        )

    def cache_identity(self):
        if not self._algorithm.cacheable:
            return None
        return ("spectral", self._algorithm.config)

    def _effective_service(self, service):
        """The service to route through: the instance's own wins."""
        if self._service is not None:
            return self._service
        if service is not None and self._algorithm.cacheable:
            return service
        return None

    def _compute_order(self, grid: Grid) -> LinearOrder:
        if self._service is not None:
            return self._service.order_grid(grid, self._algorithm)
        return self._algorithm.order_grid(grid)

    def _order_grid_domain(self, grid: Grid, service) -> LinearOrder:
        svc = self._effective_service(service)
        if svc is not None and svc is not self._service:
            return svc.order_grid(grid, self._algorithm)
        return self.order_for_grid(grid)

    def _order_point_set(self, points: PointSet, service) -> LinearOrder:
        svc = self._effective_service(service)
        if svc is not None:
            order, _ = svc.order_points(points.grid, points.cells,
                                        self._algorithm)
            return order
        order, _ = self._algorithm.order_points(points.grid, points.cells)
        return order

    def _order_graph_domain(self, graph: Graph, service) -> LinearOrder:
        svc = self._effective_service(service)
        if svc is not None:
            return svc.order_graph(graph, self._algorithm)
        return self._algorithm.order_graph(graph)


class SpectralBisectionMapping(LocalityMapping):
    """Recursive median-cut spectral bisection (the paper's ref. [1]).

    A divide-and-conquer alternative to Spectral LPM's one global sort;
    see :func:`repro.core.bisection.spectral_bisection_order`.
    """

    def __init__(self, backend: str = "auto", leaf_size: int = 8,
                 connectivity="orthogonal"):
        super().__init__()
        self._backend = backend
        self._leaf_size = leaf_size
        self._connectivity = connectivity

    @property
    def name(self) -> str:
        return "spectral-rb"

    def cache_identity(self):
        return ("spectral-rb", self._backend, self._leaf_size,
                str(self._connectivity))

    def _compute_order(self, grid: Grid) -> LinearOrder:
        from repro.graph.builders import grid_graph
        graph = grid_graph(grid, connectivity=self._connectivity)
        return self._order_graph_domain(graph, None)

    def _order_graph_domain(self, graph: Graph, service) -> LinearOrder:
        return spectral_bisection_order(graph, backend=self._backend,
                                        leaf_size=self._leaf_size)

    def _order_point_set(self, points: PointSet, service) -> LinearOrder:
        from repro.graph.builders import induced_grid_graph
        graph, _ = induced_grid_graph(points.grid, points.cells,
                                      connectivity=self._connectivity)
        return self._order_graph_domain(graph, service)


class SpectralMultilevelMapping(LocalityMapping):
    """Multilevel coarsen-solve-refine spectral ordering.

    The scalability variant: heavy-edge-matching coarsening, an exact
    coarsest solve, and smoothed prolongation — see
    :func:`repro.core.multilevel.multilevel_fiedler`.
    """

    def __init__(self, min_size: int = 64, smoothing_steps: int = 40,
                 connectivity="orthogonal", backend: str = "dense"):
        super().__init__()
        self._min_size = min_size
        self._smoothing_steps = smoothing_steps
        self._connectivity = connectivity
        self._backend = backend

    @property
    def name(self) -> str:
        return "spectral-ml"

    def cache_identity(self):
        return ("spectral-ml", self._min_size, self._smoothing_steps,
                str(self._connectivity), self._backend)

    def _compute_order(self, grid: Grid) -> LinearOrder:
        from repro.graph.builders import grid_graph
        graph = grid_graph(grid, connectivity=self._connectivity)
        return self._order_graph_domain(graph, None)

    def _order_graph_domain(self, graph: Graph, service) -> LinearOrder:
        return multilevel_order(
            graph, min_size=self._min_size,
            smoothing_steps=self._smoothing_steps,
            backend=self._backend,
        )

    def _order_point_set(self, points: PointSet, service) -> LinearOrder:
        from repro.graph.builders import induced_grid_graph
        graph, _ = induced_grid_graph(points.grid, points.cells,
                                      connectivity=self._connectivity)
        return self._order_graph_domain(graph, service)


class ExplicitMapping(LocalityMapping):
    """A fixed, precomputed order for one specific grid.

    Useful in tests and for feeding externally produced orders through the
    metric/storage machinery.
    """

    def __init__(self, grid: Grid, order: LinearOrder,
                 name: str = "explicit"):
        super().__init__()
        if order.n != grid.size:
            raise InvalidParameterError(
                f"order covers {order.n} items, grid has {grid.size} cells"
            )
        self._grid = grid
        self._order = order
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    @property
    def capabilities(self) -> MappingCapabilities:
        return MappingCapabilities(batch_encode=False, cacheable=False,
                                   provenance=False)

    def _compute_order(self, grid: Grid) -> LinearOrder:
        if grid != self._grid:
            raise InvalidParameterError(
                f"this mapping is defined only for {self._grid!r}"
            )
        return self._order


def paper_mappings(service=None, **spectral_kwargs) -> List[LocalityMapping]:
    """The five Section-5 mappings: Sweep, Peano, Gray, Hilbert, Spectral.

    ``service`` optionally attaches an ordering service to the spectral
    member (see :func:`repro.api.make_mapping`).
    """
    mappings: List[LocalityMapping] = [
        CurveMapping(name) for name in ("sweep", "peano", "gray", "hilbert")
    ]
    mappings.append(SpectralMapping(service=service, **spectral_kwargs))
    return mappings

"""One interface over every locality-preserving mapping.

Metrics, query engines, storage simulators, and experiment harnesses all
consume a :class:`LocalityMapping`: something that can produce a
:class:`~repro.core.ordering.LinearOrder` over the cells of a grid.  The
two families —

* :class:`CurveMapping` (Sweep, Snake, Peano/Z-order, Gray, Hilbert,
  Diagonal), and
* :class:`SpectralMapping` (the paper's contribution)

— are thereby interchangeable everywhere, which is what lets each figure
harness be a single loop over mapping names.

Grids whose sides are not powers of two are handled the standard way for
bit-interleaved curves: cells are keyed on the enclosing power-of-two
cube and the keys are densified into ranks (exactly how Hilbert-packed
R-trees are built in practice).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

import numpy as np

from repro.core.bisection import spectral_bisection_order
from repro.core.multilevel import multilevel_order
from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralLPM
from repro.curves.base import enclosing_bits
from repro.curves.registry import CURVE_NAMES, make_curve
from repro.curves.vectorized import batch_encoder
from repro.errors import InvalidParameterError
from repro.geometry.grid import Grid

#: Mapping names accepted by :func:`mapping_by_name`.
MAPPING_NAMES = CURVE_NAMES + ("spectral", "spectral-rb", "spectral-ml")

#: The five mappings compared in the paper's Section 5.
PAPER_MAPPING_NAMES = ("sweep", "peano", "gray", "hilbert", "spectral")


class LocalityMapping(ABC):
    """A named way of linearizing grid cells.

    Orders are cached per grid: spectral orders cost an eigensolve and
    experiment harnesses ask for the same grid repeatedly.
    """

    def __init__(self) -> None:
        self._cache: Dict[Grid, LinearOrder] = {}

    @property
    @abstractmethod
    def name(self) -> str:
        """Registry / display name."""

    @abstractmethod
    def _compute_order(self, grid: Grid) -> LinearOrder:
        """Compute the order for a grid (uncached)."""

    def order_for_grid(self, grid: Grid) -> LinearOrder:
        """The linear order of ``grid``'s cells (cached)."""
        if grid not in self._cache:
            self._cache[grid] = self._compute_order(grid)
        return self._cache[grid]

    def ranks_for_grid(self, grid: Grid) -> np.ndarray:
        """Read-only rank array: ``ranks[flat_cell_index] = rank``."""
        return self.order_for_grid(grid).ranks

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class CurveMapping(LocalityMapping):
    """A space-filling-curve (or keyed) order as a mapping."""

    def __init__(self, curve_name: str):
        super().__init__()
        if curve_name not in CURVE_NAMES:
            raise InvalidParameterError(
                f"unknown curve {curve_name!r}; expected one of {CURVE_NAMES}"
            )
        self._curve_name = curve_name

    @property
    def name(self) -> str:
        return self._curve_name

    def _compute_order(self, grid: Grid) -> LinearOrder:
        bits = enclosing_bits(max(grid.shape))
        coords = grid.coordinates()
        encoder = batch_encoder(self._curve_name)
        if encoder is not None and bits * grid.ndim <= 62:
            keys = encoder(coords, bits)
        else:
            curve = make_curve(self._curve_name, grid.ndim, bits)
            keys = np.fromiter(
                (curve.point_to_key(tuple(point)) for point in coords),
                dtype=np.int64, count=grid.size,
            )
        # Densify: distinct keys -> ranks 0..n-1 preserving key order.
        perm = np.argsort(keys, kind="stable")
        return LinearOrder(perm)


class SpectralMapping(LocalityMapping):
    """Spectral LPM as a mapping; forwards kwargs to :class:`SpectralLPM`.

    ``service`` optionally routes order computation through an
    :class:`~repro.service.ordering.OrderingService`, so identical
    (config, grid) requests across mappings, stores and harnesses share
    one eigensolve (and survive restarts when the service has a disk
    store).  Without a service each instance keeps only its private
    per-grid memo from :class:`LocalityMapping`.
    """

    def __init__(self, service=None, **spectral_kwargs):
        super().__init__()
        self._algorithm = SpectralLPM(**spectral_kwargs)
        self._service = service

    @property
    def name(self) -> str:
        return "spectral"

    @property
    def algorithm(self) -> SpectralLPM:
        return self._algorithm

    @property
    def service(self):
        """The attached ordering service, if any."""
        return self._service

    def _compute_order(self, grid: Grid) -> LinearOrder:
        if self._service is not None:
            return self._service.order_grid(grid, self._algorithm)
        return self._algorithm.order_grid(grid)


class SpectralBisectionMapping(LocalityMapping):
    """Recursive median-cut spectral bisection (the paper's ref. [1]).

    A divide-and-conquer alternative to Spectral LPM's one global sort;
    see :func:`repro.core.bisection.spectral_bisection_order`.
    """

    def __init__(self, backend: str = "auto", leaf_size: int = 8,
                 connectivity="orthogonal"):
        super().__init__()
        self._backend = backend
        self._leaf_size = leaf_size
        self._connectivity = connectivity

    @property
    def name(self) -> str:
        return "spectral-rb"

    def _compute_order(self, grid: Grid) -> LinearOrder:
        from repro.graph.builders import grid_graph
        graph = grid_graph(grid, connectivity=self._connectivity)
        return spectral_bisection_order(graph, backend=self._backend,
                                        leaf_size=self._leaf_size)


class SpectralMultilevelMapping(LocalityMapping):
    """Multilevel coarsen-solve-refine spectral ordering.

    The scalability variant: heavy-edge-matching coarsening, an exact
    coarsest solve, and smoothed prolongation — see
    :func:`repro.core.multilevel.multilevel_fiedler`.
    """

    def __init__(self, min_size: int = 64, smoothing_steps: int = 40,
                 connectivity="orthogonal", backend: str = "dense"):
        super().__init__()
        self._min_size = min_size
        self._smoothing_steps = smoothing_steps
        self._connectivity = connectivity
        self._backend = backend

    @property
    def name(self) -> str:
        return "spectral-ml"

    def _compute_order(self, grid: Grid) -> LinearOrder:
        from repro.graph.builders import grid_graph
        graph = grid_graph(grid, connectivity=self._connectivity)
        return multilevel_order(
            graph, min_size=self._min_size,
            smoothing_steps=self._smoothing_steps,
            backend=self._backend,
        )


class ExplicitMapping(LocalityMapping):
    """A fixed, precomputed order for one specific grid.

    Useful in tests and for feeding externally produced orders through the
    metric/storage machinery.
    """

    def __init__(self, grid: Grid, order: LinearOrder,
                 name: str = "explicit"):
        super().__init__()
        if order.n != grid.size:
            raise InvalidParameterError(
                f"order covers {order.n} items, grid has {grid.size} cells"
            )
        self._grid = grid
        self._order = order
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def _compute_order(self, grid: Grid) -> LinearOrder:
        if grid != self._grid:
            raise InvalidParameterError(
                f"this mapping is defined only for {self._grid!r}"
            )
        return self._order


def mapping_by_name(name: str, service=None, **kwargs) -> LocalityMapping:
    """Instantiate a mapping from its registry name.

    Keyword arguments are forwarded to :class:`SpectralMapping` (they are
    rejected for curve mappings, which take none).  ``service``
    optionally attaches an
    :class:`~repro.service.ordering.OrderingService` to the spectral
    mapping; it is ignored for every other name (curves are pure
    arithmetic and need no cache).
    """
    lowered = name.lower()
    if lowered == "spectral":
        return SpectralMapping(service=service, **kwargs)
    if lowered == "spectral-rb":
        return SpectralBisectionMapping(**kwargs)
    if lowered == "spectral-ml":
        return SpectralMultilevelMapping(**kwargs)
    if kwargs:
        raise InvalidParameterError(
            f"curve mapping {name!r} accepts no keyword arguments"
        )
    return CurveMapping(lowered)


def paper_mappings(service=None, **spectral_kwargs) -> List[LocalityMapping]:
    """The five Section-5 mappings: Sweep, Peano, Gray, Hilbert, Spectral.

    ``service`` optionally attaches an ordering service to the spectral
    member (see :func:`mapping_by_name`).
    """
    mappings: List[LocalityMapping] = [
        CurveMapping(name) for name in ("sweep", "peano", "gray", "hilbert")
    ]
    mappings.append(SpectralMapping(service=service, **spectral_kwargs))
    return mappings

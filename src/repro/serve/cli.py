"""``repro-serve`` — run a multi-process ordering fleet standalone.

::

    repro-serve --shards 4 --cache-dir /var/cache/repro-orders

brings up the worker fleet over per-shard artifact stores, runs an
optional warm-up/demo workload, prints per-shard statistics, and — with
``--keep-alive`` — stays up until interrupted, restarting any worker
that dies.  Because every worker hydrates from its shard's store, a
restarted fleet (or worker) answers all previously-seen traffic with
zero eigensolves; ``repro-serve`` over a warm cache directory is
therefore cheap enough to bounce freely.

The same binary doubles as a smoke test of a deployment's plumbing:
``--demo-side N`` orders a small population of grids through the real
IPC path and reports where every answer came from.

With ``--listen HOST:PORT`` the fleet additionally fronts a TCP socket
(:class:`repro.net.SpectralServer`): remote
:class:`~repro.net.RemoteFrontend` clients get the full ordering and
query surface, cross-client request coalescing, and admission control
(``--queue-depth`` / ``--request-timeout``, or the
``REPRO_NET_QUEUE_DEPTH`` / ``REPRO_NET_TIMEOUT`` environment knobs).
Port 0 binds an ephemeral port; the chosen address is printed as
``listening on HOST:PORT``.  The wire format is pickle — only listen
on trusted networks.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.spectral import SpectralConfig
from repro.errors import InvalidParameterError
from repro.geometry.grid import Grid
from repro.net.config import parse_address
from repro.obs import Timer
from repro.serve.supervisor import ProcessFleet


def _listen_address(spec: str):
    """argparse type for ``--listen``: well-formed and unprivileged."""
    try:
        host, port = parse_address(spec)
    except InvalidParameterError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    if 1 <= port <= 1023:
        raise argparse.ArgumentTypeError(
            f"port {port} is privileged; pick 0 (ephemeral) or >= 1024")
    return host, port


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run a multi-process spectral-ordering fleet.",
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="keyspace partitions (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes; <= shards, each worker then owns every "
             "shard congruent to its id (default: one per shard)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="root of the per-shard artifact stores "
             "(<cache-dir>/shard-NNN); omitting it keeps the fleet "
             "memory-only, so restarts start cold",
    )
    parser.add_argument(
        "--demo-side", type=int, default=None, metavar="N",
        help="warm-up workload: order grids (4,4)..(N,N) through the "
             "fleet and report cache sources; 0 disables "
             "(default: 16, or off with --listen)",
    )
    parser.add_argument(
        "--listen", type=_listen_address, default=None,
        metavar="HOST:PORT",
        help="serve the fleet over a TCP socket for RemoteFrontend "
             "clients; port 0 binds an ephemeral port (printed as "
             "'listening on HOST:PORT'); implies --keep-alive; "
             "pickle wire format -- trusted networks only",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="socket admission queue capacity (default: "
             "REPRO_NET_QUEUE_DEPTH or 64)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="socket per-request deadline (default: REPRO_NET_TIMEOUT "
             "or 30)",
    )
    parser.add_argument(
        "--dispatchers", type=int, default=4, metavar="N",
        help="socket dispatcher threads; bounds concurrent backend "
             "calls (default: %(default)s)",
    )
    parser.add_argument(
        "--keep-alive", action="store_true",
        help="stay up after the warm-up, restarting dead workers, "
             "until interrupted",
    )
    parser.add_argument(
        "--health", action="store_true",
        help="probe every worker (identity, uptime, per-shard store "
             "status) over the real IPC path and print the results",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print each worker's metric registry (Prometheus text) "
             "after the warm-up",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.listen is not None and args.demo_side is not None:
        parser.error("--listen cannot be combined with --demo-side "
                     "(the server does not run the warm-up workload)")
    if args.listen is None and args.demo_side is None:
        args.demo_side = 16
    if args.demo_side and not 0 <= args.demo_side <= 256:
        print("repro-serve: --demo-side must be in [0, 256]",
              file=sys.stderr)
        return 2
    for flag, value in (("--queue-depth", args.queue_depth),
                        ("--dispatchers", args.dispatchers)):
        if value is not None and value < 1:
            parser.error(f"{flag} must be >= 1, got {value}")
    if args.request_timeout is not None and args.request_timeout <= 0:
        parser.error(f"--request-timeout must be > 0, "
                     f"got {args.request_timeout}")
    try:
        fleet = ProcessFleet(args.shards, workers=args.workers,
                             cache_dir=args.cache_dir)
    except Exception as exc:
        print(f"repro-serve: failed to start fleet: {exc}",
              file=sys.stderr)
        return 1
    with fleet:
        hellos = fleet.hellos()
        store = args.cache_dir or "(memory-only)"
        print(f"fleet up: {fleet.num_shards} shards on "
              f"{fleet.num_workers} workers, stores under {store}")
        for hello in hellos:
            print(f"  worker {hello.worker_id} (pid {hello.pid}) "
                  f"owns shards {list(hello.shard_ids)}")

        if args.demo_side:
            from repro.api.process_pool import ProcessPoolFrontend

            front = ProcessPoolFrontend(fleet=fleet)
            requests = [(Grid((s, s)), SpectralConfig())
                        for s in range(4, args.demo_side + 1)]
            with Timer() as timer:
                front.order_many(requests,
                                 parallelism=fleet.num_workers)
            print(f"warm-up: ordered {len(requests)} grids "
                  f"in {timer.seconds:.2f}s")
            _print_stats(fleet)

        if args.health:
            for health in fleet.health():
                print(f"  worker {health.worker_id} (pid {health.pid}) "
                      f"status={health.status} "
                      f"uptime={health.uptime_seconds:.1f}s "
                      f"requests={health.requests_handled}")
                for shard, verdict in sorted(health.stores.items()):
                    print(f"    shard {shard}: {verdict}")

        if args.metrics:
            for worker_id, dump in enumerate(fleet.worker_metrics()):
                print(f"--- worker {worker_id} metrics ---")
                sys.stdout.write(dump)

        if args.listen is not None:
            return _serve_socket(fleet, args)

        if args.keep_alive:
            print("serving; Ctrl-C to stop")
            try:
                while True:
                    time.sleep(1.0)
                    for worker_id in fleet.check_workers():
                        print(f"restarted dead worker {worker_id} "
                              "(rehydrated from its shard stores)")
            except KeyboardInterrupt:
                print("\nshutting down")
    return 0


def _serve_socket(fleet: ProcessFleet, args) -> int:
    """Front the fleet with a socket server until interrupted."""
    from repro.api.process_pool import ProcessPoolFrontend
    from repro.net.server import SpectralServer

    host, port = args.listen
    front = ProcessPoolFrontend(fleet=fleet)
    try:
        server = SpectralServer(
            front, host, port,
            queue_depth=args.queue_depth,
            request_timeout=args.request_timeout,
            dispatchers=args.dispatchers,
        ).start()
    except OSError as exc:
        print(f"repro-serve: failed to bind {host}:{port}: {exc}",
              file=sys.stderr)
        return 1
    bound_host, bound_port = server.address
    # flush so a parent process scripting this CLI can read the
    # ephemeral port the moment it is bound
    print(f"listening on {bound_host}:{bound_port}", flush=True)
    print("serving; Ctrl-C to stop", flush=True)
    try:
        while True:
            time.sleep(1.0)
            for worker_id in fleet.check_workers():
                print(f"restarted dead worker {worker_id} "
                      "(rehydrated from its shard stores)", flush=True)
    except KeyboardInterrupt:
        print("\ndraining and shutting down")
    finally:
        server.close()
    return 0


def _print_stats(fleet: ProcessFleet) -> None:
    for shard, stats in enumerate(fleet.shard_stats()):
        row = stats.as_dict()
        print(f"  shard {shard}: computed={row['computed']} "
              f"disk={row['disk_hits']} memory={row['memory_hits']} "
              f"solver_calls={row['solver_calls']}")
    combined = fleet.combined_stats()
    print(f"  total solver calls: {combined.solver_calls}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

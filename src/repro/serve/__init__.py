"""Multi-process serving: a worker fleet over the sharded keyspace.

The serving track so far stayed inside one process — caching
(:class:`~repro.service.OrderingService`), coalescing, thread fan-out,
and in-process keyspace sharding
(:class:`~repro.service.ShardedIndexFrontend`).  This package crosses
the process boundary: :class:`ProcessFleet` runs N ``spawn``-context
worker processes, each hydrating per-shard
:class:`~repro.service.OrderingService` tiers from per-shard on-disk
:class:`~repro.service.ArtifactStore` directories, behind a dispatcher
that routes requests by the same deterministic
:func:`~repro.service.routing.shard_of_domain` formula every other
front uses.

What crosses the boundary is the *reduced model* of each solve — the
:class:`~repro.service.OrderArtifact` (permutation + provenance), a few
kilobytes — never the Laplacian or the Krylov state, which is the
economic argument for process-level deployment: eigensolves are
expensive to compute, cheap to ship.

Layers:

* :mod:`repro.serve.protocol` — the pickled request/response values;
* :mod:`repro.serve.worker` — the worker process main loop;
* :mod:`repro.serve.supervisor` — spawn, dispatch, crash detection,
  restart-and-rehydrate, graceful shutdown;
* :mod:`repro.serve.cli` — the ``repro-serve`` console script;
* :class:`repro.api.ProcessPoolFrontend` — the facade serving the same
  surface as the in-process sharded frontend over this fleet.
"""

from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.supervisor import FleetStats, ProcessFleet, shard_store_dirs

__all__ = [
    "FleetStats",
    "PROTOCOL_VERSION",
    "ProcessFleet",
    "shard_store_dirs",
]

"""The wire values of the multi-process serving harness.

Dispatcher and workers exchange pickled dataclasses over
``multiprocessing`` pipes — strictly request/response, one in flight
per pipe.  The payloads lean entirely on the pickle contract pinned by
``tests/service/test_ipc_pickle.py``: configs, domains, orders, and
artifacts round-trip with equality, stable fingerprints, and routing
agreement, so a worker can *independently* re-derive the cache key and
shard of any request and cross-check the dispatcher's routing instead
of trusting it.

Failures travel as values, never as a dead pipe: a worker catches the
exception, ships it back pickled when it survives pickling (the normal
case — the library's exception types are plain), and otherwise ships
its type name and traceback text inside a
:class:`~repro.errors.WorkerError`.  The dispatcher re-raises either
way, so a remote failure reads like a local one.
"""

from __future__ import annotations

import pickle
import traceback
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import WorkerError

#: Bumped on any incompatible protocol change; worker and dispatcher
#: refuse to talk across versions (both sides are always deployed from
#: one code base, so a mismatch means a stale worker binary).
#: v2: trace-context envelopes (:class:`TracedRequest` /
#: :class:`TracedResponse`) and the :class:`HealthRequest` /
#: :class:`MetricsRequest` introspection pair.
PROTOCOL_VERSION = 2


# ---------------------------------------------------------------------------
# Requests (dispatcher -> worker)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PingRequest:
    """Liveness probe; answered with the worker's identity payload."""


@dataclass(frozen=True)
class ShutdownRequest:
    """Graceful stop: the worker acknowledges, then exits its loop."""


@dataclass(frozen=True)
class StatsRequest:
    """Per-shard :class:`~repro.service.ServiceStats` snapshots."""


@dataclass(frozen=True)
class HealthRequest:
    """Liveness-plus: answered with a :class:`WorkerHealth` payload
    (identity, uptime, per-shard store reachability, request count) —
    the health endpoint the ROADMAP's socket transport will serve."""


@dataclass(frozen=True)
class MetricsRequest:
    """The worker's :func:`repro.obs.dump_metrics` output — Prometheus
    text exposition format, rendered worker-side so the dispatcher can
    concatenate per-process dumps without re-aggregation."""


@dataclass(frozen=True)
class OrderRequestMessage:
    """One ordering request: a domain (grid or graph) plus its config.

    ``want_artifact`` selects the full provenance-carrying
    :class:`~repro.service.OrderArtifact` over the bare
    :class:`~repro.core.ordering.LinearOrder`.
    """

    domain: object
    config: object = None
    want_artifact: bool = False


@dataclass(frozen=True)
class OrderManyMessage:
    """A batch of ``(domain, config)`` pairs, all owned by this worker.

    The dispatcher groups a cross-shard batch by owning worker; inside
    the worker the batch is re-grouped per owned shard so each shard's
    :meth:`~repro.service.OrderingService.order_many` keeps its
    one-topology-build amortization.
    """

    requests: Tuple[Tuple[object, object], ...]


@dataclass(frozen=True)
class IndexQueryMessage:
    """A query against the worker-local index of one domain.

    ``op`` is one of ``"range"`` / ``"nn"`` / ``"join"`` /
    ``"query_many"`` / ``"workload"``, applied to the
    :class:`~repro.api.SpectralIndex` the worker builds (and caches)
    over its own shard service.
    """

    domain: object
    op: str
    args: Tuple = ()
    kwargs: Dict = field(default_factory=dict)


#: Operations :class:`IndexQueryMessage` accepts.
INDEX_OPS = ("range", "nn", "join", "query_many", "workload")


@dataclass(frozen=True)
class TracedRequest:
    """Envelope carrying a request plus the dispatcher's trace context.

    ``trace_context`` is the ``(trace_id, span_id)`` wire tuple of
    :class:`repro.obs.TraceContext`.  The dispatcher wraps outgoing
    requests in this envelope **only when tracing is enabled**, so the
    untraced wire format is byte-identical to the bare request; the
    worker unwraps it, resumes the trace for the duration of the
    request, and ships the spans back in a :class:`TracedResponse`.
    """

    request: object
    trace_context: Tuple[str, str]


# ---------------------------------------------------------------------------
# Responses (worker -> dispatcher)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OkResponse:
    """A successful result; ``payload`` is the method's return value."""

    payload: object = None


@dataclass(frozen=True)
class ErrorResponse:
    """A failure shipped as a value.

    ``exception`` carries the original exception when it pickles;
    otherwise ``None``, with ``kind`` / ``message`` / ``remote_traceback``
    preserving what can always be preserved.
    """

    kind: str
    message: str
    remote_traceback: str
    exception: Optional[BaseException] = None

    def raise_(self) -> None:
        # Pickling drops __traceback__, so the re-raised exception
        # alone would show no worker-side frames; chaining the shipped
        # traceback text as the cause keeps them in the dispatcher's
        # error output.
        if self.exception is not None:
            raise self.exception from WorkerError(
                f"remote worker traceback:\n{self.remote_traceback}",
                remote_traceback=self.remote_traceback,
            )
        raise WorkerError(
            f"worker failed with {self.kind}: {self.message}",
            remote_traceback=self.remote_traceback,
        )


def error_response(exc: BaseException) -> ErrorResponse:
    """Wrap a worker-side exception for the wire.

    The exception object itself is shipped only when it survives a
    pickle round-trip *in the worker* — discovering unpicklability at
    ``conn.send`` time would kill the reply entirely and surface as a
    crash instead of an error.
    """
    shippable: Optional[BaseException] = None
    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:
        pass
    else:
        shippable = exc
    return ErrorResponse(
        kind=type(exc).__name__,
        message=str(exc),
        remote_traceback="".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__)),
        exception=shippable,
    )


@dataclass(frozen=True)
class TracedResponse:
    """Envelope around a response carrying the worker-side spans.

    ``spans`` is a tuple of finished :class:`repro.obs.SpanRecord`
    values (plain picklable dataclasses) produced while handling the
    traced request; the dispatcher ingests them into its local
    collector, stitching one cross-process trace.  Error responses are
    wrapped too — a failed request still ships the spans recorded up to
    the failure.
    """

    response: object
    spans: Tuple = ()


@dataclass(frozen=True)
class WorkerHello:
    """The ping payload: who the worker is and what it owns."""

    worker_id: int
    shard_ids: Tuple[int, ...]
    num_shards: int
    protocol_version: int = PROTOCOL_VERSION
    pid: int = 0


@dataclass(frozen=True)
class WorkerHealth:
    """The health payload: identity plus liveness detail.

    ``stores`` maps shard id to ``"ok"`` or an error string from
    probing that shard's artifact-store directory, so an unreachable
    disk tier surfaces in ``health`` instead of as a latency cliff.
    """

    worker_id: int
    pid: int
    shard_ids: Tuple[int, ...]
    num_shards: int
    uptime_seconds: float
    requests_handled: int
    stores: Dict[int, str]
    status: str = "ok"
    protocol_version: int = PROTOCOL_VERSION

"""The worker process: per-shard services behind one request loop.

A worker owns one or more keyspace shards.  For each it hydrates an
:class:`~repro.service.OrderingService` over that shard's on-disk
:class:`~repro.service.ArtifactStore` directory — which is the whole
restart story: a freshly spawned worker answers every previously-seen
request from disk, paying **zero eigensolves** (the fleet test pins
this through the services' ``solver_calls`` counters).

The loop is deliberately single-threaded: one request in flight per
pipe means no worker-side locking beyond what the services already
provide, and a crash between requests can never corrupt a response.
Routing is *verified, not trusted*: the worker re-derives the owning
shard of every domain with the same
:func:`~repro.service.routing.shard_of_domain` formula the dispatcher
used and refuses domains it does not own — turning any router/worker
disagreement into a loud error instead of a silently cold cache.

``worker_main`` is a module-level function so the ``spawn`` context can
import it by reference in the child process (required on Windows/macOS
and under pytest).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.caching import LRUCache
from repro.errors import InvalidParameterError
from repro.obs import dump_metrics, remote_capture, span
from repro.service.ordering import OrderingService, normalize_requests
from repro.service.routing import (
    coerce_domain,
    routing_fingerprint,
    shard_of_domain,
)
from repro.serve.protocol import (
    INDEX_OPS,
    ErrorResponse,
    HealthRequest,
    IndexQueryMessage,
    MetricsRequest,
    OkResponse,
    OrderManyMessage,
    OrderRequestMessage,
    PingRequest,
    ShutdownRequest,
    StatsRequest,
    TracedRequest,
    TracedResponse,
    WorkerHealth,
    WorkerHello,
    error_response,
)


class ShardWorker:
    """The in-process half of a worker: services, indexes, dispatch.

    Factored out of the pipe loop so tests can drive it synchronously
    (same code path, no processes) and so the CLI's in-process fallback
    can reuse it.
    """

    def __init__(self, worker_id: int, shard_ids: Sequence[int],
                 num_shards: int, store_dirs: Dict[int, str],
                 memory_entries: int = 128, hierarchy_entries: int = 32,
                 max_indexes: int = 16,
                 index_defaults: Optional[dict] = None):
        self.worker_id = int(worker_id)
        self.shard_ids = tuple(int(s) for s in shard_ids)
        self.num_shards = int(num_shards)
        self._services: Dict[int, OrderingService] = {
            shard: OrderingService(
                memory_entries=memory_entries,
                store=store_dirs.get(shard),
                hierarchy_entries=hierarchy_entries,
            )
            for shard in self.shard_ids
        }
        self._index_defaults = dict(index_defaults or {})
        # The defaults are fixed for the worker's lifetime; their key
        # component is too.
        self._defaults_key = tuple(sorted(
            (name, repr(value))
            for name, value in self._index_defaults.items()))
        # Bounded, like the sharded frontend's table: a worker serving
        # a stream of distinct domains must not hoard views forever.
        self._indexes: LRUCache = LRUCache(max_indexes)
        self._started = time.monotonic()
        self.requests_handled = 0

    # ------------------------------------------------------------------
    @property
    def services(self) -> Dict[int, OrderingService]:
        """The per-shard services, keyed by shard id."""
        return self._services

    def _service_for(self, domain) -> Tuple[int, OrderingService]:
        domain = coerce_domain(domain)
        shard = shard_of_domain(domain, self.num_shards)
        service = self._services.get(shard)
        if service is None:
            raise InvalidParameterError(
                f"worker {self.worker_id} owns shards {self.shard_ids}, "
                f"not shard {shard} — dispatcher/worker routing disagree"
            )
        return shard, service

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    def hello(self) -> WorkerHello:
        return WorkerHello(worker_id=self.worker_id,
                           shard_ids=self.shard_ids,
                           num_shards=self.num_shards,
                           pid=os.getpid())

    def stats(self) -> Dict[int, object]:
        return {shard: service.stats
                for shard, service in self._services.items()}

    def health(self) -> WorkerHealth:
        """Liveness detail: identity, uptime, per-shard store probes.

        Probing is read-only (a directory check), so ``health`` is safe
        to poll at any frequency; a shard whose store directory vanished
        reports the failure here instead of as a latency cliff on the
        next disk miss.
        """
        stores: Dict[int, str] = {}
        for shard, service in self._services.items():
            store = service.store
            if store is None:
                stores[shard] = "ok (memory-only)"
                continue
            try:
                root = str(store.root)
                stores[shard] = ("ok" if os.path.isdir(root)
                                 else f"missing store dir {root}")
            except Exception as exc:  # pragma: no cover - defensive
                stores[shard] = f"error: {exc!r}"
        status = ("ok" if all(v.startswith("ok")
                              for v in stores.values()) else "degraded")
        return WorkerHealth(
            worker_id=self.worker_id,
            pid=os.getpid(),
            shard_ids=self.shard_ids,
            num_shards=self.num_shards,
            uptime_seconds=time.monotonic() - self._started,
            requests_handled=self.requests_handled,
            stores=stores,
            status=status,
        )

    def metrics(self) -> str:
        """This process's metrics in Prometheus text format."""
        return dump_metrics()

    def order_one(self, message: OrderRequestMessage):
        from repro.geometry.grid import Grid

        domain = coerce_domain(message.domain)
        _, service = self._service_for(domain)
        if isinstance(domain, Grid):
            artifact = service.grid_artifact(domain, message.config)
        else:
            artifact = service.graph_artifact(domain, message.config)
        return artifact if message.want_artifact else artifact.order

    def order_many(self, message: OrderManyMessage) -> List:
        """Batched orders, re-grouped per owned shard.

        Each shard's service sees its sub-batch in one
        :meth:`~repro.service.OrderingService.order_many` call, so the
        one-topology-build amortization survives the process hop.
        """
        normalized = normalize_requests(
            (coerce_domain(domain), config)
            for domain, config in message.requests)
        by_shard: Dict[int, List[int]] = {}
        for i, request in enumerate(normalized):
            shard, _ = self._service_for(request.domain)
            by_shard.setdefault(shard, []).append(i)
        results: List = [None] * len(normalized)
        for shard, indices in by_shard.items():
            orders = self._services[shard].order_many(
                [normalized[i] for i in indices])
            for i, order in zip(indices, orders):
                results[i] = order
        return results

    def index_query(self, message: IndexQueryMessage):
        if message.op not in INDEX_OPS:
            raise InvalidParameterError(
                f"op must be one of {INDEX_OPS}, got {message.op!r}"
            )
        index = self._index_for(message.domain)
        return getattr(index, message.op)(*message.args,
                                          **message.kwargs)

    def _index_for(self, domain):
        # Imported lazily, mirroring the sharded frontend: repro.serve
        # must stay importable without pulling the whole facade in.
        from repro.api.index import SpectralIndex

        domain = coerce_domain(domain)
        shard, service = self._service_for(domain)
        key = (routing_fingerprint(domain), self._defaults_key)
        index = self._indexes.get(key)
        if index is None:
            index = SpectralIndex.build(domain, service=service,
                                        **self._index_defaults)
            self._indexes.put(key, index)
        return index

    # ------------------------------------------------------------------
    def handle(self, request) -> Tuple[object, bool]:
        """Dispatch one request; returns ``(response, keep_running)``.

        A :class:`~repro.serve.protocol.TracedRequest` envelope resumes
        the dispatcher's trace for the duration of the request (the
        loop is single-threaded, so one capture scope per request is
        exact) and ships every span recorded worker-side back inside a
        :class:`~repro.serve.protocol.TracedResponse` — including on
        error responses, which still carry the spans recorded up to the
        failure.
        """
        if isinstance(request, TracedRequest):
            inner = request.request
            with remote_capture(request.trace_context) as captured:
                with span("serve.worker",
                          worker_id=self.worker_id,
                          request=type(inner).__name__) as sp:
                    response, keep_running = self._dispatch(inner)
                    if isinstance(response, ErrorResponse):
                        sp.set_attribute("error", response.kind)
            return (TracedResponse(response=response,
                                   spans=tuple(captured)), keep_running)
        return self._dispatch(request)

    def _dispatch(self, request) -> Tuple[object, bool]:
        self.requests_handled += 1
        try:
            if isinstance(request, ShutdownRequest):
                return OkResponse("bye"), False
            if isinstance(request, PingRequest):
                return OkResponse(self.hello()), True
            if isinstance(request, StatsRequest):
                return OkResponse(self.stats()), True
            if isinstance(request, HealthRequest):
                return OkResponse(self.health()), True
            if isinstance(request, MetricsRequest):
                return OkResponse(self.metrics()), True
            if isinstance(request, OrderRequestMessage):
                return OkResponse(self.order_one(request)), True
            if isinstance(request, OrderManyMessage):
                return OkResponse(self.order_many(request)), True
            if isinstance(request, IndexQueryMessage):
                return OkResponse(self.index_query(request)), True
            raise InvalidParameterError(
                f"unknown request type {type(request).__name__}"
            )
        except BaseException as exc:  # ship the failure, keep serving
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            return self._as_error(exc), True

    @staticmethod
    def _as_error(exc: BaseException) -> ErrorResponse:
        return error_response(exc)


def worker_main(worker_id: int, shard_ids: Sequence[int],
                num_shards: int, conn, store_dirs: Dict[int, str],
                memory_entries: int = 128, hierarchy_entries: int = 32,
                max_indexes: int = 16,
                index_defaults: Optional[dict] = None) -> None:
    """Entry point of a spawned worker process.

    Hydrates the shard services (warm stores make that the *only* cost
    of a restart) and answers requests until a
    :class:`~repro.serve.protocol.ShutdownRequest` arrives or the
    dispatcher's end of the pipe closes (EOF) — the latter covers a
    crashed or impolite parent, so orphaned workers exit instead of
    lingering.
    """
    worker = ShardWorker(
        worker_id, shard_ids, num_shards, store_dirs,
        memory_entries=memory_entries,
        hierarchy_entries=hierarchy_entries,
        max_indexes=max_indexes,
        index_defaults=index_defaults,
    )
    try:
        while True:
            try:
                request = conn.recv()
            except EOFError:
                break
            response, keep_running = worker.handle(request)
            try:
                conn.send(response)
            except Exception as exc:
                # Connection.send pickles the whole payload before
                # writing a byte, so a pickling failure leaves the pipe
                # clean — ship the failure instead of leaving the
                # dispatcher blocked on a reply that never comes.
                conn.send(error_response(exc))
            if not keep_running:
                break
    finally:
        conn.close()

"""The fleet supervisor: spawn, dispatch, crash recovery, shutdown.

:class:`ProcessFleet` runs N worker processes over S keyspace shards
(``workers <= shards``; shard ``s`` lives on worker ``s % workers``) in
the ``spawn`` start method — identical semantics on Linux, macOS, and
Windows, and safe under pytest (no forked interpreter state).

Dispatch is request/response over one duplex pipe per worker,
serialized by a per-worker lock; cross-worker fan-out (``broadcast``,
grouped ``order_many``) rides :func:`repro.parallel.map_in_threads`, so
the dispatcher threads merely block on IPC while the worker *processes*
run truly in parallel.

Crash recovery is restart-and-rehydrate: a dead pipe or dead process is
detected at the next dispatch (or an explicit :meth:`check_workers`),
the worker is respawned with the same shard assignment and store
directories, and — because every shard's state of record is its on-disk
:class:`~repro.service.ArtifactStore` — the replacement answers every
warm request from disk without a single eigensolve.  The in-flight
request of the crashed worker is retried once on the replacement; all
protocol requests are pure/idempotent, so the retry is safe.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    FleetShutdownError,
    InvalidParameterError,
    WorkerError,
)
from repro.obs import Timer, collector, registry, span, tracing_enabled
from repro.parallel import ensure_workers, map_in_threads
from repro.service.ordering import ServiceStats
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ErrorResponse,
    HealthRequest,
    MetricsRequest,
    OkResponse,
    PingRequest,
    ShutdownRequest,
    StatsRequest,
    TracedRequest,
    TracedResponse,
    WorkerHealth,
    WorkerHello,
)
from repro.serve.worker import worker_main

#: How long a graceful shutdown waits for a worker before killing it.
SHUTDOWN_GRACE_SECONDS = 10.0

_DISPATCH_SECONDS = registry().histogram(
    "repro_fleet_dispatch_seconds",
    "Round-trip latency of one dispatcher->worker request.")
_DISPATCHED = registry().counter(
    "repro_fleet_dispatched_total",
    "Requests sent to fleet workers.")
_RESTARTS = registry().counter(
    "repro_fleet_worker_restarts_total",
    "Worker processes respawned after a crash or explicit restart.")
_RETRIES = registry().counter(
    "repro_fleet_retried_requests_total",
    "Requests replayed on a freshly restarted worker.")


def shard_store_dirs(cache_dir, num_shards: int) -> Dict[int, str]:
    """Per-shard store directories under one cache root.

    The layout contract shared by the fleet, the CLI, and any external
    tooling: shard ``i`` persists under ``<cache_dir>/shard-<i:03d>``.
    A fleet restarted over the same root therefore rehydrates the same
    keyspace slices regardless of worker count.
    """
    root = Path(cache_dir).expanduser()
    return {i: str(root / f"shard-{i:03d}") for i in range(num_shards)}


@dataclass
class FleetStats:
    """Supervisor-side counters (worker-side live in ServiceStats)."""

    dispatched: int = 0
    worker_restarts: int = 0
    retried_requests: int = 0


class _WorkerHandle:
    """One worker process, its pipe, and the lock serializing both."""

    __slots__ = ("worker_id", "shard_ids", "process", "conn", "lock",
                 "generation")

    def __init__(self, worker_id: int, shard_ids: Tuple[int, ...]):
        self.worker_id = worker_id
        self.shard_ids = shard_ids
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.generation = 0

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ProcessFleet:
    """N worker processes serving S keyspace shards.

    Parameters
    ----------
    shards:
        Number of keyspace partitions (the routing modulus).
    workers:
        Number of worker processes; defaults to one per shard.  With
        ``workers < shards`` each worker owns every shard congruent to
        its id (``shard % workers``).
    cache_dir:
        Root of the per-shard artifact stores
        (see :func:`shard_store_dirs`).  ``None`` keeps every worker
        memory-only — restarts then start cold.
    memory_entries, hierarchy_entries, max_indexes, index_defaults:
        Forwarded to every worker's shard services / index table.

    Examples
    --------
    >>> from repro.geometry import Grid
    >>> with ProcessFleet(shards=2) as fleet:       # doctest: +SKIP
    ...     fleet.order_domain(Grid((6, 6))).n
    36
    """

    def __init__(self, shards: int = 4, *,
                 workers: Optional[int] = None,
                 cache_dir=None,
                 memory_entries: int = 128,
                 hierarchy_entries: int = 32,
                 max_indexes: int = 16,
                 index_defaults: Optional[dict] = None):
        if shards < 1:
            raise InvalidParameterError(
                f"shards must be >= 1, got {shards}"
            )
        workers = shards if workers is None else int(workers)
        if not 1 <= workers <= shards:
            raise InvalidParameterError(
                f"workers must be in [1, shards={shards}], got {workers}"
            )
        self._num_shards = int(shards)
        self._num_workers = workers
        self._store_dirs: Dict[int, str] = (
            shard_store_dirs(cache_dir, self._num_shards)
            if cache_dir is not None else {}
        )
        self._worker_kwargs = dict(
            memory_entries=memory_entries,
            hierarchy_entries=hierarchy_entries,
            max_indexes=max_indexes,
            index_defaults=dict(index_defaults or {}),
        )
        self._ctx = multiprocessing.get_context("spawn")
        self._closed = False
        self._lock = threading.Lock()  # guards spawn/restart/close
        self._stats_lock = threading.Lock()
        self.stats = FleetStats()  # guarded-by: _stats_lock
        self._handles: List[_WorkerHandle] = [
            _WorkerHandle(w, tuple(s for s in range(self._num_shards)
                                   if s % workers == w))
            for w in range(workers)
        ]
        try:
            for handle in self._handles:
                self._spawn(handle)
            # One synchronous ping per worker: surfaces import errors
            # and protocol mismatches at construction, not first use.
            for hello in self.broadcast(PingRequest()):
                if hello.protocol_version != PROTOCOL_VERSION:
                    raise WorkerError(
                        f"worker speaks protocol "
                        f"{hello.protocol_version}, dispatcher "
                        f"{PROTOCOL_VERSION}"
                    )
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        store_dirs = {shard: self._store_dirs[shard]
                      for shard in handle.shard_ids
                      if shard in self._store_dirs}
        process = self._ctx.Process(
            target=worker_main,
            name=f"repro-serve-{handle.worker_id}",
            args=(handle.worker_id, handle.shard_ids, self._num_shards,
                  child_conn, store_dirs),
            kwargs=self._worker_kwargs,
            daemon=True,
        )
        process.start()
        child_conn.close()  # the child owns its copy now
        handle.process = process
        handle.conn = parent_conn
        handle.generation += 1

    def restart_worker(self, worker_id: int,
                       seen_generation: Optional[int] = None) -> None:
        """Kill (if needed) and respawn one worker; rehydrates from disk.

        ``seen_generation`` makes crash-triggered restarts idempotent
        under concurrent dispatch: a thread that observed generation G
        fail restarts only if the handle still *is* generation G —
        otherwise another thread already replaced the worker and a
        second restart would kill the healthy replacement.
        """
        handle = self._handles[worker_id]
        with self._lock, handle.lock:
            # Re-checked under the lock: a dispatch racing close() must
            # not respawn a worker into a fleet that just shut down.
            self._require_open()
            if (seen_generation is not None
                    and handle.generation != seen_generation):
                return
            self._reap(handle)
            self._spawn(handle)
            with self._stats_lock:
                self.stats.worker_restarts += 1
            _RESTARTS.inc()

    @staticmethod
    def _reap(handle: _WorkerHandle) -> None:
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(SHUTDOWN_GRACE_SECONDS)
            if handle.process.is_alive():  # pragma: no cover
                handle.process.kill()
                handle.process.join()
            handle.process = None

    def check_workers(self) -> List[int]:
        """Restart any dead worker; returns the restarted ids."""
        self._require_open()
        restarted = []
        for handle in self._handles:
            if not handle.alive():
                self.restart_worker(handle.worker_id)
                restarted.append(handle.worker_id)
        return restarted

    def close(self) -> None:
        """Graceful shutdown: ask, wait, then insist.  Idempotent.

        Holds the fleet lock for the whole sweep so a crash-triggered
        restart serialized behind it sees ``_closed`` and refuses,
        rather than respawning a worker the sweep already missed.
        """
        if self._closed:
            return
        self._closed = True
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        for handle in self._handles:
            # handle.lock held through send, ack, *and* reap: closing
            # the pipe out from under a dispatch thread's poll loop
            # would be undefined behavior; serialized behind the lock,
            # that thread instead finds a dead handle and surfaces
            # FleetShutdownError through the retry path.
            with handle.lock:
                if handle.alive() and handle.conn is not None:
                    try:
                        handle.conn.send(ShutdownRequest())
                        # The ack keeps shutdown strictly after any
                        # in-flight request on this pipe.
                        if handle.conn.poll(SHUTDOWN_GRACE_SECONDS):
                            handle.conn.recv()
                    except (OSError, EOFError, BrokenPipeError):
                        pass
                self._reap(handle)

    def __enter__(self) -> "ProcessFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """The routing modulus."""
        return self._num_shards

    @property
    def num_workers(self) -> int:
        """How many worker processes serve those shards."""
        return self._num_workers

    @property
    def store_dirs(self) -> Dict[int, str]:
        """Per-shard store directories (empty when memory-only)."""
        return dict(self._store_dirs)

    def worker_of_shard(self, shard: int) -> int:
        """Which worker owns ``shard``."""
        if not 0 <= shard < self._num_shards:
            raise InvalidParameterError(
                f"shard must be in [0, {self._num_shards}), got {shard}"
            )
        return shard % self._num_workers

    def _require_open(self) -> None:
        if self._closed:
            raise FleetShutdownError(
                "this fleet has been shut down; build a new one"
            )

    def request(self, shard: int, message):
        """Send ``message`` to the worker owning ``shard``; return the
        payload, re-raising worker-side failures locally.

        A dead worker (crashed pipe or dead process) is restarted and
        the request retried exactly once on the replacement — every
        protocol request is pure, so the retry cannot double-apply.

        When tracing is enabled the message rides inside a
        :class:`~repro.serve.protocol.TracedRequest` under a
        ``serve.dispatch`` span, and the spans shipped back in the
        worker's :class:`~repro.serve.protocol.TracedResponse` are
        ingested into this process's collector — one stitched trace
        across the pipe.  When tracing is off, the wire format is the
        bare message, byte-identical to the untraced protocol.
        """
        self._require_open()
        handle = self._handles[self.worker_of_shard(shard)]
        if tracing_enabled():
            with span("serve.dispatch", shard=shard,
                      worker=handle.worker_id,
                      request=type(message).__name__) as sp:
                wire = TracedRequest(
                    request=message,
                    trace_context=sp.context.as_wire())
                return self._dispatch_message(handle, wire)
        return self._dispatch_message(handle, message)

    def _dispatch_message(self, handle: _WorkerHandle, wire):
        with Timer() as timer:
            try:
                try:
                    response = self._roundtrip(handle, wire)
                except (OSError, EOFError, BrokenPipeError) as exc:
                    # seen_generation was stamped under handle.lock by
                    # the failing roundtrip, so the restart is a no-op
                    # exactly when another thread already replaced
                    # *that* worker — never when a newer generation
                    # died too.
                    self.restart_worker(
                        handle.worker_id,
                        seen_generation=getattr(exc, "seen_generation",
                                                None))
                    with self._stats_lock:
                        self.stats.retried_requests += 1
                    _RETRIES.inc()
                    response = self._roundtrip(handle, wire)
            finally:
                _DISPATCH_SECONDS.observe(timer.seconds)
        if isinstance(response, TracedResponse):
            if response.spans:
                collector().ingest(response.spans)
            response = response.response
        if isinstance(response, ErrorResponse):
            response.raise_()
        if not isinstance(response, OkResponse):  # pragma: no cover
            raise WorkerError(
                f"malformed worker response {type(response).__name__}"
            )
        return response.payload

    def _roundtrip(self, handle: _WorkerHandle, message):
        with handle.lock:
            generation = handle.generation
            try:
                if not handle.alive():
                    raise BrokenPipeError("worker process is not alive")
                handle.conn.send(message)
                while not handle.conn.poll(0.05):
                    if not handle.alive():
                        raise BrokenPipeError(
                            "worker process died mid-request")
                response = handle.conn.recv()
            except (OSError, EOFError, BrokenPipeError) as exc:
                # Which generation actually failed, read under the
                # lock — the retry path must not skip restarting a
                # replacement worker that died too.
                exc.seen_generation = generation
                raise
        with self._stats_lock:
            self.stats.dispatched += 1
        _DISPATCHED.inc()
        return response

    def request_worker(self, worker_id: int, message):
        """Like :meth:`request`, addressed by worker rather than shard."""
        return self.request(self._handles[worker_id].shard_ids[0],
                            message)

    def broadcast(self, message, *,
                  parallelism: Optional[int] = None) -> List:
        """Send ``message`` to every worker; payloads in worker order."""
        self._require_open()
        workers = (self._num_workers if parallelism is None
                   else ensure_workers(parallelism))
        return map_in_threads(
            lambda handle: self.request(handle.shard_ids[0], message),
            self._handles, workers,
            thread_name_prefix="repro-fleet")

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def hellos(self) -> List[WorkerHello]:
        """Identity payloads of every (live) worker."""
        return self.broadcast(PingRequest())

    def health(self) -> List[WorkerHealth]:
        """Health payloads of every worker, in worker order.

        Each entry reports identity, uptime, request count, and a
        per-shard artifact-store probe — the payload the ROADMAP's
        socket transport will expose as its health endpoint.
        """
        return self.broadcast(HealthRequest())

    def worker_metrics(self) -> List[str]:
        """Each worker's Prometheus-format metrics dump, worker order.

        The dumps are per-process expositions; they are returned
        separately (not concatenated) because merging samples across
        processes is an aggregation decision the caller owns.
        """
        return self.broadcast(MetricsRequest())

    def shard_stats(self) -> List[ServiceStats]:
        """Per-shard service stats, in shard order, fleet-wide."""
        merged: Dict[int, ServiceStats] = {}
        for worker_stats in self.broadcast(StatsRequest()):
            merged.update(worker_stats)
        return [merged.get(shard, ServiceStats())
                for shard in range(self._num_shards)]

    def combined_stats(self) -> ServiceStats:
        """All shards' counters summed into one snapshot."""
        combined = ServiceStats()
        for stats in self.shard_stats():
            for name, value in stats.as_dict().items():
                setattr(combined, name, getattr(combined, name) + value)
        return combined

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"ProcessFleet(shards={self._num_shards}, "
                f"workers={self._num_workers}, {state})")

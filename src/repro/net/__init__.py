"""``repro.net`` — the network serving tier, standard library only.

Layers a TCP transport over the serving stack: a threaded
:class:`SpectralServer` front (length-prefixed framed pickles reusing
the :mod:`repro.serve.protocol` dataclasses, with admission control
and cross-client request coalescing) and a :class:`RemoteFrontend`
client exposing the exact :class:`~repro.api.ProcessPoolFrontend`
surface over a persistent connection.

Deployment shape::

    repro-serve --listen 127.0.0.1:4730 --workers 4      # server

    from repro.net import RemoteFrontend                  # clients
    with RemoteFrontend("127.0.0.1", 4730) as remote:
        orders = remote.order_grid(Grid(64, 64))

**Security**: the wire format is pickle — arbitrary code execution for
anyone who can write to the socket.  Only ever expose a server on
trusted networks (see :mod:`repro.net.framing` and the README's
remote-serving section).
"""

from repro.net.client import RemoteFrontend, scrape_metrics
from repro.net.config import (
    NET_QUEUE_DEPTH,
    NET_TIMEOUT,
    parse_address,
    positive_float_from_env,
    positive_int_from_env,
)
from repro.net.errors import (
    ConnectionLostError,
    FrameError,
    HandshakeError,
    NetError,
    RequestTimeoutError,
    ServerBusy,
)
from repro.net.framing import NET_MAGIC, NET_PROTOCOL_VERSION
from repro.net.messages import ServerHealth, ServerHello, WorkerMetricsRequest
from repro.net.server import SpectralServer

__all__ = [
    "RemoteFrontend",
    "scrape_metrics",
    "SpectralServer",
    "NetError",
    "HandshakeError",
    "FrameError",
    "ConnectionLostError",
    "RequestTimeoutError",
    "ServerBusy",
    "NET_MAGIC",
    "NET_PROTOCOL_VERSION",
    "NET_TIMEOUT",
    "NET_QUEUE_DEPTH",
    "parse_address",
    "positive_int_from_env",
    "positive_float_from_env",
    "ServerHello",
    "ServerHealth",
    "WorkerMetricsRequest",
]

"""The socket front: threaded transport + admission + cross-client
coalescing over any serving frontend.

:class:`SpectralServer` listens on a TCP socket and dispatches framed
requests (:mod:`repro.net.framing`) into a backing frontend — the
multi-process :class:`~repro.api.ProcessPoolFrontend` in deployment,
the in-process :class:`~repro.service.ShardedIndexFrontend` (or any
duck-typed stand-in) in tests.  Three serving properties live at this
tier, not in the transport:

**Admission control.**  Ordering and query requests pass through a
bounded pending queue (``queue_depth``, default from
``REPRO_NET_QUEUE_DEPTH``) consumed by a fixed pool of dispatcher
threads.  An arrival finding the queue full, a request still queued
past its deadline (``request_timeout``, default ``REPRO_NET_TIMEOUT``),
and any request arriving during shutdown are rejected with a typed
:class:`~repro.net.errors.ServerBusy` that travels back as a value —
overload degrades into fast, explicit rejections, never into hangs.
Introspection (ping/stats/health/metrics) bypasses the queue: health
checks must keep answering precisely when the queue is full.

**Cross-client coalescing.**  N connections cold-missing the same
fingerprint pay exactly one eigensolve *and* one backend round trip:
the same single-flight shape as
:meth:`repro.service.OrderingService._serve_cached`, lifted to the
connection-handling tier and keyed by the service's own
:func:`~repro.service.fingerprint.order_key`, so the key the flights
coalesce on is bit-for-bit the key the caches store under.

**Graceful drain.**  ``close()`` stops accepting, rejects new work,
lets every admitted request finish and its response reach the client,
then tears the connections down — a bounced server never strands an
in-flight answer it could have delivered.

A client that dies mid-request costs nothing but its own answer: the
dispatcher completes, the send fails, the response is discarded, the
connection is reaped, and ``repro_net_connections_dropped_total``
ticks — the queue slot and dispatcher thread are released exactly as
on the success path.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.spectral import SpectralConfig
from repro.errors import InvalidParameterError
from repro.net.config import NET_QUEUE_DEPTH, NET_TIMEOUT
from repro.net.errors import (
    ConnectionLostError,
    FrameError,
    HandshakeError,
    ServerBusy,
)
from repro.net.framing import (
    HANDSHAKE_BYTES,
    NET_PROTOCOL_VERSION,
    handshake_bytes,
    parse_handshake,
    recv_exact,
    recv_frame,
    send_frame,
)
from repro.net.messages import (
    ServerHealth,
    ServerHello,
    WorkerMetricsRequest,
)
from repro.obs import Timer, dump_metrics, registry, remote_capture, span
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ErrorResponse,
    HealthRequest,
    IndexQueryMessage,
    MetricsRequest,
    OkResponse,
    OrderManyMessage,
    OrderRequestMessage,
    PingRequest,
    StatsRequest,
    TracedRequest,
    TracedResponse,
    error_response,
)
from repro.service.fingerprint import domain_fingerprint, order_key
from repro.service.routing import coerce_domain
from repro.geometry.grid import Grid
from repro.graph.adjacency import Graph

#: How long a new connection gets to complete the handshake.
HANDSHAKE_TIMEOUT_SECONDS = 10.0

#: How long ``close()`` waits for admitted requests to finish before
#: tearing connections down anyway.
DRAIN_GRACE_SECONDS = 10.0

#: Index operations the server forwards to the backing frontend.
#: ``workload`` (supported worker-side) is deliberately absent: the
#: pool frontend does not expose it, and the remote surface mirrors
#: the pool frontend exactly.
SERVED_INDEX_OPS = ("range", "nn", "join", "query_many")

_CONNECTIONS = registry().counter(
    "repro_net_connections_total",
    "Client connections accepted by the socket server.")
_OPEN = registry().gauge(
    "repro_net_connections_open",
    "Client connections currently open.")
_DROPPED = registry().counter(
    "repro_net_connections_dropped_total",
    "Connections that died with requests in flight (responses "
    "discarded) or whose response send failed.")
_HANDSHAKE_REJECTED = registry().counter(
    "repro_net_handshake_rejected_total",
    "Connections refused at the handshake (bad magic or version).")
_REQUESTS = registry().counter(
    "repro_net_requests_total",
    "Requests received over the socket, by protocol message type.")
_REJECTED = registry().counter(
    "repro_net_rejected_total",
    "Requests refused by admission control, by reason.")
_QUEUE_DEPTH = registry().gauge(
    "repro_net_queue_depth",
    "Requests currently waiting in the admission queue.")
_HANDLE_SECONDS = registry().histogram(
    "repro_net_request_seconds",
    "Server-side latency of one admitted request, dequeue to reply.")
_COALESCED = registry().counter(
    "repro_net_coalesced_total",
    "Order requests served by another connection's in-flight solve.")


class _Connection:
    """One accepted socket, its send lock, and its in-flight count."""

    __slots__ = ("sock", "addr", "conn_id", "send_lock", "lock",
                 "inflight", "dropped", "closed")

    def __init__(self, sock: socket.socket, addr: Any,
                 conn_id: int) -> None:
        self.sock = sock
        self.addr = addr
        self.conn_id = conn_id
        self.send_lock = threading.Lock()
        self.lock = threading.Lock()
        self.inflight = 0  # guarded-by: lock
        self.dropped = False  # guarded-by: lock
        self.closed = False  # guarded-by: lock


class _WorkItem:
    """One admitted request waiting for (or on) a dispatcher."""

    __slots__ = ("conn", "seq", "message", "deadline")

    def __init__(self, conn: _Connection, seq: int, message: Any,
                 deadline: float) -> None:
        self.conn = conn
        self.seq = seq
        self.message = message
        self.deadline = deadline


class _NetFlight:
    """One in-progress order other connections can wait on."""

    __slots__ = ("event", "artifact")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.artifact: Any = None


class SpectralServer:
    """Serve a frontend's surface over TCP with admission control.

    Parameters
    ----------
    frontend:
        The backing frontend — anything speaking the
        ``ShardedIndexFrontend`` surface (``grid_artifact`` /
        ``graph_artifact`` / ``order_many`` / ``query_many`` /
        ``range`` / ``nn`` / ``join`` / ``stats``).
    host, port:
        Bind address; port 0 picks an ephemeral port (read it back
        from :attr:`address` — the idiom every test uses so CI never
        collides).
    queue_depth:
        Capacity of the pending-request queue; default from
        ``REPRO_NET_QUEUE_DEPTH``.
    request_timeout:
        Per-request deadline in seconds, stamped at arrival; default
        from ``REPRO_NET_TIMEOUT``.
    dispatchers:
        Dispatcher threads executing admitted requests; bounds how
        many backend calls run concurrently.
    own_frontend:
        When true, ``close()`` also closes the frontend (the CLI sets
        this; tests usually keep their frontends).

    Examples
    --------
    >>> from repro.service import ShardedIndexFrontend
    >>> with SpectralServer(ShardedIndexFrontend(shards=2)) as server:
    ...     host, port = server.address        # doctest: +SKIP
    """

    def __init__(self, frontend: Any, host: str = "127.0.0.1",
                 port: int = 0, *, queue_depth: Optional[int] = None,
                 request_timeout: Optional[float] = None,
                 dispatchers: int = 4, backlog: int = 128,
                 own_frontend: bool = False) -> None:
        if queue_depth is None:
            queue_depth = NET_QUEUE_DEPTH
        if request_timeout is None:
            request_timeout = NET_TIMEOUT
        if queue_depth < 1:
            raise InvalidParameterError(
                f"queue_depth must be >= 1, got {queue_depth}")
        if request_timeout <= 0:
            raise InvalidParameterError(
                f"request_timeout must be > 0, got {request_timeout}")
        if dispatchers < 1:
            raise InvalidParameterError(
                f"dispatchers must be >= 1, got {dispatchers}")
        self._frontend = frontend
        self._own_frontend = bool(own_frontend)
        self._host = host
        self._port = int(port)
        self._queue_depth = int(queue_depth)
        self._request_timeout = float(request_timeout)
        self._dispatcher_count = int(dispatchers)
        self._backlog = int(backlog)
        self._queue: "queue.Queue[Optional[_WorkItem]]" = \
            queue.Queue(maxsize=self._queue_depth)
        self._flights: Dict[str, _NetFlight] = {}  # guarded-by: _flights_lock
        self._flights_lock = threading.Lock()
        self._conns: Dict[int, _Connection] = {}  # guarded-by: _conns_lock
        self._conns_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending = 0  # guarded-by: _state_lock
        self._requests_handled = 0  # guarded-by: _state_lock
        self._rejections = 0  # guarded-by: _state_lock
        self._next_conn_id = 0  # guarded-by: _conns_lock
        # Monotonic False->True; the unlocked reads below are benign.
        self._draining = False  # guarded-by: _state_lock
        self._closed = False
        self._started_at = time.monotonic()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._dispatch_threads: List[threading.Thread] = []
        self._address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SpectralServer":
        """Bind, listen, and start the accept/dispatch threads."""
        if self._listener is not None:
            return self
        if self._closed:
            raise InvalidParameterError(
                "this server has been closed; build a new one")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(self._backlog)
        self._listener = listener
        self._address = listener.getsockname()[:2]
        self._started_at = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, args=(listener,),
            name="repro-net-accept", daemon=True)
        self._accept_thread.start()
        for i in range(self._dispatcher_count):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-net-dispatch-{i}", daemon=True)
            thread.start()
            self._dispatch_threads.append(thread)
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — the real port when bound to 0."""
        if self._address is None:
            raise InvalidParameterError("server is not started")
        return self._address

    @property
    def pending(self) -> int:
        """Requests admitted but not yet replied to (queued + running)."""
        with self._state_lock:
            return self._pending

    def close(self) -> None:
        """Drain and shut down.  Idempotent.

        Stops accepting, rejects new requests (``ServerBusy``,
        reason ``"draining"``), waits up to ``DRAIN_GRACE_SECONDS``
        for admitted requests to finish and their responses to flush,
        then closes every connection (and the frontend, when owned).
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            self._draining = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=DRAIN_GRACE_SECONDS)
        deadline = time.monotonic() + DRAIN_GRACE_SECONDS
        while time.monotonic() < deadline:
            with self._state_lock:
                if self._pending == 0:
                    break
            time.sleep(0.005)
        for _ in self._dispatch_threads:
            try:
                self._queue.put(None, timeout=DRAIN_GRACE_SECONDS)
            except queue.Full:  # pragma: no cover - wedged dispatcher
                break
        for thread in self._dispatch_threads:
            thread.join(timeout=DRAIN_GRACE_SECONDS)
        self.disconnect_all()
        if self._own_frontend:
            close = getattr(self._frontend, "close", None)
            if close is not None:
                close()

    def disconnect_all(self) -> None:
        """Close every client connection (used by drain and by tests
        exercising the client's reconnect path)."""
        with self._conns_lock:
            conns = list(self._conns.values())
        for conn in conns:
            self._reap(conn)

    def __enter__(self) -> "SpectralServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Accept / read
    # ------------------------------------------------------------------
    def _accept_loop(self, listener: socket.socket) -> None:
        # The listener arrives as an argument: ``self._listener`` is
        # Optional (None again after close) and this thread outlives
        # that transition.
        while True:
            try:
                sock, addr = listener.accept()
            except OSError:  # listener closed: shutdown
                return
            if self._draining:  # repro-lint: disable=RPR001
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - best effort
                pass
            with self._conns_lock:
                conn_id = self._next_conn_id
                self._next_conn_id += 1
                conn = _Connection(sock, addr, conn_id)
                self._conns[conn_id] = conn
                open_count = len(self._conns)
            _CONNECTIONS.inc()
            _OPEN.set(open_count)
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"repro-net-conn-{conn_id}", daemon=True,
            ).start()

    def _serve_connection(self, conn: _Connection) -> None:
        try:
            if not self._handshake(conn):
                return
            while True:
                try:
                    seq, message = recv_frame(conn.sock)
                except (ConnectionLostError, FrameError, OSError,
                        socket.timeout):
                    return
                self._route(conn, seq, message)
        finally:
            self._reap(conn)

    def _handshake(self, conn: _Connection) -> bool:
        """Exchange hellos; returns False (and counts the reject) on a
        peer that does not speak this protocol version."""
        try:
            conn.sock.settimeout(HANDSHAKE_TIMEOUT_SECONDS)
            try:
                version = parse_handshake(
                    recv_exact(conn.sock, HANDSHAKE_BYTES))
            except (HandshakeError, ConnectionLostError):
                _HANDSHAKE_REJECTED.inc()
                return False
            # Identify ourselves either way: a mismatched client reads
            # our version from this hello and raises a clean
            # HandshakeError naming both sides instead of seeing EOF.
            conn.sock.sendall(handshake_bytes())
            if version != NET_PROTOCOL_VERSION:
                _HANDSHAKE_REJECTED.inc()
                return False
            conn.sock.settimeout(None)
            return True
        except (OSError, socket.timeout):
            _HANDSHAKE_REJECTED.inc()
            return False

    # ------------------------------------------------------------------
    # Routing / admission
    # ------------------------------------------------------------------
    def _route(self, conn: _Connection, seq: int,
               message: Any) -> None:
        inner = (message.request if isinstance(message, TracedRequest)
                 else message)
        _REQUESTS.inc(request=type(inner).__name__)
        if isinstance(inner, (PingRequest, StatsRequest, HealthRequest,
                              MetricsRequest, WorkerMetricsRequest)):
            # Introspection bypasses admission: health and metrics must
            # answer precisely when the queue is full.
            self._reply(conn, seq, self._introspect(inner))
            with self._state_lock:
                self._requests_handled += 1
            return
        if not isinstance(inner, (OrderRequestMessage, OrderManyMessage,
                                  IndexQueryMessage)):
            self._reply(conn, seq, error_response(InvalidParameterError(
                f"unknown request type {type(inner).__name__}")))
            return
        if self._draining:  # repro-lint: disable=RPR001
            self._reject(conn, seq, "draining",
                         "server is shutting down")
            return
        item = _WorkItem(conn, seq, message,
                         time.monotonic() + self._request_timeout)
        with conn.lock:
            conn.inflight += 1
        with self._state_lock:
            self._pending += 1
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            with conn.lock:
                conn.inflight -= 1
            with self._state_lock:
                self._pending -= 1
            self._reject(conn, seq, "queue_full",
                         f"admission queue is at its "
                         f"{self._queue_depth}-request capacity")
            return
        _QUEUE_DEPTH.set(self._queue.qsize())

    def _reject(self, conn: _Connection, seq: int, reason: str,
                detail: str) -> None:
        _REJECTED.inc(reason=reason)
        with self._state_lock:
            self._rejections += 1
        self._reply(conn, seq,
                    error_response(ServerBusy(detail, reason=reason)))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            _QUEUE_DEPTH.set(self._queue.qsize())
            rejected = False
            try:
                if time.monotonic() > item.deadline:
                    rejected = True
                    _REJECTED.inc(reason="deadline")
                    with self._state_lock:
                        self._rejections += 1
                    response = error_response(ServerBusy(
                        f"request waited in the queue past its "
                        f"{self._request_timeout:.3f}s deadline",
                        reason="deadline"))
                else:
                    with Timer() as timer:
                        response = self._execute(item.message,
                                                 item.deadline)
                    _HANDLE_SECONDS.observe(timer.seconds)
            finally:
                # The request leaves "in flight" BEFORE the reply is
                # sent: a client that closes the moment its answer
                # lands must not race the reader's EOF into a false
                # dropped-connection count.
                with item.conn.lock:
                    item.conn.inflight -= 1
                with self._state_lock:
                    self._pending -= 1
            self._reply(item.conn, item.seq, response)
            if not rejected:
                with self._state_lock:
                    self._requests_handled += 1

    def _execute(self, message: Any, deadline: float) -> Any:
        if isinstance(message, TracedRequest):
            inner = message.request
            trace_id = message.trace_context[0]
            with remote_capture(message.trace_context) as captured:
                with span("net.server",
                          request=type(inner).__name__) as sp:
                    response = self._execute_bare(inner, deadline)
                    if isinstance(response, ErrorResponse):
                        sp.set_attribute("error", response.kind)
            # capture_spans is process-wide; concurrent connections may
            # interleave, so ship only this trace's spans.
            spans = tuple(r for r in captured if r.trace_id == trace_id)
            return TracedResponse(response=response, spans=spans)
        return self._execute_bare(message, deadline)

    def _execute_bare(self, message: Any, deadline: float) -> Any:
        try:
            if isinstance(message, OrderRequestMessage):
                payload = self._order(message, deadline)
            elif isinstance(message, OrderManyMessage):
                payload = self._frontend.order_many(
                    list(message.requests))
            elif isinstance(message, IndexQueryMessage):
                payload = self._index_op(message)
            else:  # pragma: no cover - guarded by _route
                raise InvalidParameterError(
                    f"unknown request type {type(message).__name__}")
            return OkResponse(payload)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            return error_response(exc)

    def _index_op(self, message: IndexQueryMessage) -> Any:
        if message.op not in SERVED_INDEX_OPS:
            raise InvalidParameterError(
                f"op must be one of {SERVED_INDEX_OPS}, "
                f"got {message.op!r}")
        handler = getattr(self._frontend, message.op)
        return handler(message.domain, *message.args, **message.kwargs)

    # ------------------------------------------------------------------
    # Cross-client coalescing
    # ------------------------------------------------------------------
    def _order(self, message: OrderRequestMessage,
               deadline: float) -> Any:
        domain = coerce_domain(message.domain)
        want_artifact = message.want_artifact
        config = message.config
        # Only plain-config grid/graph orders coalesce: a shipped
        # SpectralLPM instance may be non-cacheable, and only grids and
        # graphs have the order_key fingerprint the caches share.
        if (isinstance(domain, (Grid, Graph))
                and (config is None
                     or isinstance(config, SpectralConfig))):
            key = order_key(config or SpectralConfig(),
                            domain_fingerprint(domain))
        else:
            artifact = self._artifact(domain, config)
            return artifact if want_artifact else artifact.order
        while True:
            with self._flights_lock:
                flight = self._flights.get(key)
                if flight is None:
                    mine = _NetFlight()
                    self._flights[key] = mine
            if flight is None:
                try:
                    artifact = self._artifact(domain, config)
                    mine.artifact = artifact
                finally:
                    with self._flights_lock:
                        self._flights.pop(key, None)
                    mine.event.set()
                return artifact if want_artifact else artifact.order
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not flight.event.wait(remaining):
                raise ServerBusy(
                    "coalesced order still in flight at the request "
                    "deadline", reason="deadline")
            if flight.artifact is not None:
                _COALESCED.inc()
                artifact = flight.artifact
                return artifact if want_artifact else artifact.order
            # The leader failed; loop — one waiter becomes the next
            # leader, so a transient failure never wedges the key.

    def _artifact(self, domain: Any, config: Any) -> Any:
        # Always the full artifact, even for order-only callers: the
        # flight's waiters may want either shape, and the order *is*
        # artifact.order (the same derivation the fleet worker uses),
        # so bit-identity is preserved by construction.
        if isinstance(domain, Grid):
            return self._frontend.grid_artifact(domain, config)
        return self._frontend.graph_artifact(domain, config)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _introspect(self, message: Any) -> Any:
        try:
            if isinstance(message, PingRequest):
                payload = self._hello()
            elif isinstance(message, StatsRequest):
                payload = self._frontend.stats()
            elif isinstance(message, HealthRequest):
                payload = self._health()
            elif isinstance(message, MetricsRequest):
                payload = dump_metrics()
            else:  # WorkerMetricsRequest
                worker_metrics = getattr(self._frontend,
                                         "worker_metrics", None)
                payload = (worker_metrics() if worker_metrics is not None
                           else [])
            return OkResponse(payload)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            return error_response(exc)

    def _hello(self) -> ServerHello:
        return ServerHello(
            net_protocol_version=NET_PROTOCOL_VERSION,
            serve_protocol_version=PROTOCOL_VERSION,
            num_shards=int(getattr(self._frontend, "num_shards", 0)),
            num_workers=int(getattr(self._frontend, "num_workers", 1)),
            pid=os.getpid(),
        )

    def _health(self) -> ServerHealth:
        health = getattr(self._frontend, "health", None)
        workers = tuple(health()) if health is not None else ()
        with self._conns_lock:
            open_count = len(self._conns)
        with self._state_lock:
            handled = self._requests_handled
            rejections = self._rejections
            pending = self._pending
        host, port = self.address
        return ServerHealth(
            status="draining" if self._draining else "ok",  # repro-lint: disable=RPR001
            pid=os.getpid(),
            host=host,
            port=port,
            uptime_seconds=time.monotonic() - self._started_at,
            connections_open=open_count,
            requests_handled=handled,
            rejections=rejections,
            queue_capacity=self._queue_depth,
            queue_size=pending,
            workers=workers,
        )

    # ------------------------------------------------------------------
    # Replies / teardown
    # ------------------------------------------------------------------
    def _reply(self, conn: _Connection, seq: int,
               response: Any) -> None:
        try:
            with conn.send_lock:
                # Advisory read under send_lock, not conn.lock: a reply
                # racing the reaper at worst sends on a closing socket,
                # which the except below already absorbs.
                if conn.closed:  # repro-lint: disable=RPR007
                    raise ConnectionLostError("connection already reaped")
                send_frame(conn.sock, seq, response)
        except Exception:
            # The client is gone (or the payload will not frame): the
            # response is discarded; the slot was already released.
            self._mark_dropped(conn)
            self._reap(conn)

    def _mark_dropped(self, conn: _Connection) -> None:
        with conn.lock:
            if conn.dropped:
                return
            conn.dropped = True
        _DROPPED.inc()

    def _reap(self, conn: _Connection) -> None:
        with conn.lock:
            had_inflight = conn.inflight > 0
            already_closed = conn.closed
            conn.closed = True
        if had_inflight:
            # The peer died with requests executing: their responses
            # will be discarded when the dispatcher's send fails.
            self._mark_dropped(conn)
        try:
            conn.sock.close()
        except OSError:
            pass
        if not already_closed:
            with self._conns_lock:
                self._conns.pop(conn.conn_id, None)
                _OPEN.set(len(self._conns))

    def __repr__(self) -> str:
        state = ("closed" if self._closed
                 else "listening" if self._listener else "unstarted")
        addr = self._address or (self._host, self._port)
        return (f"SpectralServer({addr[0]}:{addr[1]}, "
                f"queue_depth={self._queue_depth}, "
                f"dispatchers={self._dispatcher_count}, {state})")

"""Exception types of the network serving tier.

All derive from :class:`~repro.errors.ReproError` through
:class:`NetError`, so callers keep their one-type catch.  Everything
here must survive a pickle round trip — rejections travel back to the
client as values inside the protocol's ``ErrorResponse``, exactly like
worker-side failures on the process fleet.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ReproError


class NetError(ReproError):
    """Base class for failures of the socket serving tier."""


class HandshakeError(NetError):
    """The peer does not speak this protocol (bad magic or version).

    Deliberately *not* an :class:`OSError`: the client's
    reconnect-with-backoff loop retries transport failures, but a
    handshake mismatch is deterministic — retrying it would loop
    forever against the same incompatible server.
    """


class FrameError(NetError):
    """A wire frame is malformed (oversized, truncated, or not a
    ``(seq, payload)`` envelope) — the stream cannot be trusted past
    this point, so the connection is torn down."""


class ConnectionLostError(NetError):
    """The transport died mid-conversation (EOF or a socket error)."""


class RequestTimeoutError(NetError):
    """No response arrived within the client's read timeout.

    The request may still complete server-side (a running eigensolve is
    not cancelled); the result lands in the server's caches, so a retry
    after the timeout is cheap.
    """


class ServerBusy(NetError):
    """The server refused admission; the typed overload rejection.

    ``reason`` says which limit fired:

    - ``"queue_full"`` — the bounded pending-request queue was at
      capacity when the request arrived;
    - ``"deadline"`` — the request waited in the queue past its
      per-request deadline before a dispatcher picked it up;
    - ``"draining"`` — the server is shutting down and no longer
      admits new work.

    Travels back to the client as a value (pickled inside an
    ``ErrorResponse``) and re-raises there — overload looks like this
    exception, never like a hang or a dead socket.
    """

    def __init__(self, message: str, reason: str = "queue_full") -> None:
        super().__init__(message)
        self.reason = reason

    def __reduce__(self) -> "Tuple[type, Tuple[str, str]]":
        # Exception.__reduce__ would replay only args[0] and lose the
        # reason across the pickle boundary.
        return (ServerBusy, (self.args[0], self.reason))

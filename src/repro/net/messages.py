"""Server-level wire values layered over :mod:`repro.serve.protocol`.

The socket tier reuses the fleet protocol's request dataclasses
(``OrderRequestMessage``, ``IndexQueryMessage``, ``StatsRequest``, ...)
verbatim — these few additions cover what only exists once a *server*
(not a worker) answers: its own identity, aggregate health, and the
per-worker metric fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ServerHello:
    """The ping payload: who the server is and what it fronts."""

    net_protocol_version: int
    serve_protocol_version: int
    num_shards: int
    num_workers: int
    pid: int


@dataclass(frozen=True)
class WorkerMetricsRequest:
    """Ask for the per-worker Prometheus dumps behind the server.

    Distinct from the fleet protocol's ``MetricsRequest``, which the
    server answers with *its own* process registry — the one holding
    the ``repro_net_*`` families a scraper actually wants.
    """


@dataclass(frozen=True)
class ServerHealth:
    """Aggregate liveness: the server process plus every worker.

    ``workers`` carries the fleet's per-worker
    :class:`~repro.serve.protocol.WorkerHealth` payloads when the
    backing frontend exposes them (the process pool does; an in-process
    frontend reports an empty tuple).
    """

    status: str
    pid: int
    host: str
    port: int
    uptime_seconds: float
    connections_open: int
    requests_handled: int
    rejections: int
    queue_capacity: int
    queue_size: int
    workers: Tuple = ()

"""``RemoteFrontend`` — the serving surface over a socket.

Drop-in for :class:`~repro.api.ProcessPoolFrontend` /
:class:`~repro.service.ShardedIndexFrontend`: the same methods, the
same errors (server-side failures re-raise here as their original
types), and bit-identical results — the server runs the same service
code, so ``remote.query_many(...) == local.query_many(...)`` holds
element for element.

One persistent connection per frontend, created eagerly so
misconfiguration fails at construction, not first use.  Transport
failures (server restart, dropped connection) are retried through a
bounded reconnect-with-backoff loop; a read timeout raises
:class:`~repro.net.errors.RequestTimeoutError` *without* retrying,
because the request may still be executing server-side and blind
resends would double the work.  A protocol-version mismatch raises
:class:`~repro.net.errors.HandshakeError` immediately — deterministic
failures are not retried.

Instances are not thread-safe per call — they serialize concurrent
calls over the single connection with an internal lock, which is
correct but unpipelined; concurrent *clients* (one ``RemoteFrontend``
per thread) are how the tests drive cross-client coalescing.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.geometry.grid import Grid
from repro.graph.adjacency import Graph
from repro.net.errors import (
    ConnectionLostError,
    FrameError,
    HandshakeError,
    RequestTimeoutError,
)
from repro.net.framing import (
    HANDSHAKE_BYTES,
    NET_PROTOCOL_VERSION,
    handshake_bytes,
    parse_handshake,
    recv_exact,
    recv_frame,
    send_frame,
)
from repro.net.messages import ServerHealth, ServerHello, WorkerMetricsRequest
from repro.obs import collector, registry, span, tracing_enabled
from repro.obs.tracing import current_context
from repro.parallel import ensure_workers
from repro.serve.protocol import (
    ErrorResponse,
    HealthRequest,
    IndexQueryMessage,
    MetricsRequest,
    OrderManyMessage,
    OrderRequestMessage,
    PingRequest,
    StatsRequest,
    TracedRequest,
    TracedResponse,
)
from repro.service.routing import routing_fingerprint, shard_of_domain

_ROUNDTRIP_SECONDS = registry().histogram(
    "repro_net_client_roundtrip_seconds",
    "Client-observed latency of one remote request, send to reply.")
_RECONNECTS = registry().counter(
    "repro_net_client_reconnects_total",
    "Times the client rebuilt its connection after a transport failure.")


def _connect(host: str, port: int, connect_timeout: float,
             read_timeout: Optional[float]) -> Tuple[socket.socket,
                                                     Optional[int]]:
    """Dial, handshake, and return ``(socket, server_version)``.

    The returned version is what the server claimed; the caller decides
    whether a mismatch is fatal (it is).
    """
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - best effort
        pass
    try:
        sock.sendall(handshake_bytes())
        server_version = parse_handshake(
            recv_exact(sock, HANDSHAKE_BYTES))
        sock.settimeout(read_timeout)
        return sock, server_version
    except BaseException:
        sock.close()
        raise


class RemoteFrontend:
    """Client to a :class:`~repro.net.server.SpectralServer`.

    Parameters
    ----------
    host, port:
        Where the server listens (``SpectralServer.address``, or the
        ``listening on HOST:PORT`` line ``repro-serve --listen``
        prints).
    connect_timeout:
        Seconds allowed for each TCP connect + handshake.
    read_timeout:
        Seconds to wait for any single response before raising
        :class:`RequestTimeoutError`.  Must comfortably exceed the
        slowest expected cold solve.
    reconnect_attempts:
        Transport-failure retries per request (connect and send/recv
        combined) before the failure propagates.
    backoff_base, backoff_max:
        Exponential backoff between reconnect attempts:
        ``min(backoff_max, backoff_base * 2**attempt)`` seconds.

    Examples
    --------
    >>> with RemoteFrontend("127.0.0.1", 45301) as remote:  # doctest: +SKIP
    ...     order = remote.order_grid(Grid(16, 16))
    """

    def __init__(self, host: str, port: int, *,
                 connect_timeout: float = 5.0,
                 read_timeout: float = 60.0,
                 reconnect_attempts: int = 3,
                 backoff_base: float = 0.05,
                 backoff_max: float = 2.0) -> None:
        if connect_timeout <= 0:
            raise InvalidParameterError(
                f"connect_timeout must be > 0, got {connect_timeout}")
        if read_timeout <= 0:
            raise InvalidParameterError(
                f"read_timeout must be > 0, got {read_timeout}")
        if reconnect_attempts < 0:
            raise InvalidParameterError(
                f"reconnect_attempts must be >= 0, "
                f"got {reconnect_attempts}")
        self._host = host
        self._port = int(port)
        self._connect_timeout = float(connect_timeout)
        self._read_timeout = float(read_timeout)
        self._reconnect_attempts = int(reconnect_attempts)
        self._backoff_base = float(backoff_base)
        self._backoff_max = float(backoff_max)
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None  # guarded-by: _lock
        self._seq = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        with self._lock:
            self._ensure_connected_locked()
        self._hello: ServerHello = self._call(PingRequest())

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _ensure_connected_locked(self) -> socket.socket:
        """Dial + handshake under ``self._lock``; returns the live
        socket so callers never touch the ``Optional`` field."""
        if self._sock is not None:
            return self._sock
        if self._closed:
            raise ConnectionLostError("this RemoteFrontend is closed")
        sock, server_version = _connect(
            self._host, self._port, self._connect_timeout,
            self._read_timeout)
        if server_version != NET_PROTOCOL_VERSION:
            sock.close()
            raise HandshakeError(
                f"server at {self._host}:{self._port} speaks protocol "
                f"version {server_version}, this client speaks "
                f"{NET_PROTOCOL_VERSION}")
        self._sock = sock
        return sock

    def _drop_socket_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _roundtrip(self, message: Any) -> Any:
        """Send one request and read its response, reconnecting on
        transport failure; returns the raw response payload."""
        with self._lock:
            attempt = 0
            while True:
                if self._closed:
                    # Deterministic failure: retrying a closed client
                    # would just burn the full backoff schedule.
                    raise ConnectionLostError(
                        "this RemoteFrontend is closed")
                try:
                    sock = self._ensure_connected_locked()
                    self._seq += 1
                    seq = self._seq
                    send_frame(sock, seq, message)
                    while True:
                        got_seq, payload = recv_frame(sock)
                        if got_seq == seq:
                            return payload
                        # A response to a request whose reply we gave
                        # up on (never in the current strict
                        # send-then-receive discipline, but harmless to
                        # skip rather than corrupt the stream).
                except socket.timeout:
                    # The request may still be running server-side;
                    # the stream is now desynchronized, so drop it —
                    # but never blind-resend.
                    self._drop_socket_locked()
                    raise RequestTimeoutError(
                        f"no response from {self._host}:{self._port} "
                        f"within {self._read_timeout}s") from None
                except FrameError:
                    # A malformed frame leaves unread bytes on the
                    # stream; keeping the socket would hand the *next*
                    # request this response's leftovers.
                    self._drop_socket_locked()
                    raise
                except (ConnectionLostError, OSError):
                    self._drop_socket_locked()
                    if attempt >= self._reconnect_attempts:
                        raise
                    _RECONNECTS.inc()
                    time.sleep(min(self._backoff_max,
                                   self._backoff_base * (2 ** attempt)))
                    attempt += 1

    def _call(self, message: Any) -> Any:
        """One remote call: trace wrap, round trip, error unwrap."""
        traced = tracing_enabled()
        if traced:
            with span("net.client",
                      request=type(message).__name__,
                      host=self._host, port=self._port):
                ctx = current_context()
                # No context means nothing to resume server-side; the
                # bare message keeps the untraced wire format (and the
                # server indexes trace_context, so never ship None).
                wire = (TracedRequest(request=message,
                                      trace_context=ctx.as_wire())
                        if ctx is not None else message)
                start = time.monotonic()
                response = self._roundtrip(wire)
                _ROUNDTRIP_SECONDS.observe(time.monotonic() - start)
        else:
            start = time.monotonic()
            response = self._roundtrip(message)
            _ROUNDTRIP_SECONDS.observe(time.monotonic() - start)
        if isinstance(response, TracedResponse):
            if response.spans:
                collector().ingest(response.spans)
            response = response.response
        if isinstance(response, ErrorResponse):
            response.raise_()
        return response.payload

    # ------------------------------------------------------------------
    # Ordering surface
    # ------------------------------------------------------------------
    def order_grid(self, grid: Grid, config: Any = None) -> Any:
        """Remote counterpart of ``ShardedIndexFrontend.order_grid``."""
        self._expect(grid, Grid, "order_grid")
        return self._call(OrderRequestMessage(domain=grid, config=config))

    def grid_artifact(self, grid: Grid, config: Any = None) -> Any:
        self._expect(grid, Grid, "grid_artifact")
        return self._call(OrderRequestMessage(
            domain=grid, config=config, want_artifact=True))

    def order_graph(self, graph: Graph, config: Any = None) -> Any:
        self._expect(graph, Graph, "order_graph")
        return self._call(OrderRequestMessage(domain=graph, config=config))

    def graph_artifact(self, graph: Graph, config: Any = None) -> Any:
        self._expect(graph, Graph, "graph_artifact")
        return self._call(OrderRequestMessage(
            domain=graph, config=config, want_artifact=True))

    def order_many(self, requests: Sequence,
                   parallelism: Optional[int] = None) -> List:
        """Order a batch in one round trip.

        ``parallelism`` is validated for surface compatibility but the
        degree of concurrency is the server's decision.
        """
        ensure_workers(parallelism)
        from repro.service.ordering import normalize_requests

        normalized = tuple((r.domain, r.config)
                           for r in normalize_requests(requests))
        if not normalized:
            return []
        return self._call(OrderManyMessage(requests=normalized))

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------
    def range(self, domain: Any, box: Any, **kwargs: Any) -> Any:
        return self._query(domain, "range", (box,), kwargs)

    def nn(self, domain: Any, cell: Any, k: int, **kwargs: Any) -> Any:
        return self._query(domain, "nn", (cell, k), kwargs)

    def join(self, domain: Any, a: Any, b: Any, *, epsilon: float,
             window: Any, **kwargs: Any) -> Any:
        kwargs = dict(kwargs, epsilon=epsilon, window=window)
        return self._query(domain, "join", (a, b), kwargs)

    def query_many(self, domain: Any, queries: Any,
                   parallelism: Optional[int] = None) -> Any:
        ensure_workers(parallelism)
        return self._query(domain, "query_many", (list(queries),), {})

    def _query(self, domain: Any, op: str, args: tuple,
               kwargs: dict) -> Any:
        return self._call(IndexQueryMessage(
            domain=domain, op=op, args=tuple(args), kwargs=dict(kwargs)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def hello(self) -> ServerHello:
        """Re-ping the server; also the cheapest liveness probe."""
        self._hello = self._call(PingRequest())
        return self._hello

    def stats(self) -> Any:
        """Per-shard ``ServiceStats`` from the backing frontend."""
        return self._call(StatsRequest())

    def combined_stats(self) -> Any:
        """All shards' counters summed into one ``ServiceStats`` —
        the exact ``ProcessPoolFrontend.combined_stats`` shape."""
        from repro.service.ordering import ServiceStats

        combined = ServiceStats()
        for stats in self.stats():
            for name, value in stats.as_dict().items():
                setattr(combined, name, getattr(combined, name) + value)
        return combined

    def health(self) -> ServerHealth:
        return self._call(HealthRequest())

    def metrics(self) -> str:
        """The server process's Prometheus dump (``repro_net_*`` and
        everything else in its registry)."""
        return self._call(MetricsRequest())

    def worker_metrics(self) -> List[str]:
        """Per-worker Prometheus dumps when the server fronts a fleet."""
        return self._call(WorkerMetricsRequest())

    # ------------------------------------------------------------------
    # Topology helpers (computed locally — same functions both sides)
    # ------------------------------------------------------------------
    def shard_of(self, domain: Any) -> int:
        return shard_of_domain(domain, self.num_shards)

    def fingerprint_of(self, domain: Any) -> str:
        return routing_fingerprint(domain)

    @property
    def num_shards(self) -> int:
        return self._hello.num_shards

    @property
    def num_workers(self) -> int:
        return self._hello.num_workers

    @property
    def address(self) -> Tuple[str, int]:
        return (self._host, self._port)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._drop_socket_locked()

    def __enter__(self) -> "RemoteFrontend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            state = "closed" if self._closed else "connected"
        return f"RemoteFrontend({self._host}:{self._port}, {state})"

    @staticmethod
    def _expect(domain: Any, kind: type, method: str) -> None:
        if not isinstance(domain, kind):
            raise InvalidParameterError(
                f"{method} expects a {kind.__name__}, "
                f"got {type(domain).__name__}")


def scrape_metrics(host: str, port: int, *, workers: bool = False,
                   connect_timeout: float = 5.0,
                   read_timeout: float = 30.0) -> str:
    """One-shot metrics scrape of a live server (``repro-stats metrics
    --connect``).  Returns the Prometheus text dump — the server's own
    registry, plus each worker's dump when ``workers`` is true."""
    client = RemoteFrontend(
        host, port, connect_timeout=connect_timeout,
        read_timeout=read_timeout, reconnect_attempts=0)
    try:
        parts = [client.metrics()]
        if workers:
            for i, dump in enumerate(client.worker_metrics()):
                parts.append(f"# ---- worker {i} ----\n{dump}")
        return "\n".join(parts)
    finally:
        client.close()

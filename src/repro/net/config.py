"""Deployment knobs of the network tier, resolved and validated once.

The same treatment as the ``REPRO_*_CUTOFF`` solver knobs
(:func:`repro.linalg.backends.cutoff_from_env`): absent or empty
variables mean the default, anything else must parse — a silently
ignored typo in a production timeout is worse than a loud import-time
failure.  Standard library only, so :mod:`repro.net` stays importable
without numpy.
"""

from __future__ import annotations

import math
import os
from typing import Tuple

from repro.errors import ConfigurationError, InvalidParameterError


def positive_int_from_env(name: str, default: int) -> int:
    """Resolve a positive-integer knob from the environment.

    Absent or blank values yield ``default``; anything else must parse
    as an integer >= 1 or :class:`~repro.errors.ConfigurationError` is
    raised naming the variable.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return int(default)
    try:
        value = int(raw.strip())
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"{name} must be a positive integer, got {value}"
        )
    return value


def positive_float_from_env(name: str, default: float) -> float:
    """Resolve a positive-seconds knob from the environment.

    Same contract as :func:`positive_int_from_env` but for durations:
    the value must parse as a finite number > 0.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return float(default)
    try:
        value = float(raw.strip())
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a positive number of seconds, got {raw!r}"
        ) from None
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(
            f"{name} must be a positive number of seconds, got {raw!r}"
        )
    return value


#: Server-side per-request deadline (seconds): a request still queued
#: this long after arrival is rejected with ``ServerBusy("deadline")``.
#: Overridable via ``REPRO_NET_TIMEOUT``.
NET_TIMEOUT = positive_float_from_env("REPRO_NET_TIMEOUT", 30.0)

#: Capacity of the server's bounded pending-request queue; an arrival
#: finding it full is rejected immediately with
#: ``ServerBusy("queue_full")``.  Overridable via
#: ``REPRO_NET_QUEUE_DEPTH``.
NET_QUEUE_DEPTH = positive_int_from_env("REPRO_NET_QUEUE_DEPTH", 64)


def parse_address(spec: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` into ``(host, port)``, or raise.

    The port must be an integer in ``[0, 65535]``; port ``0`` means
    "pick an ephemeral port" when binding (and is meaningless to
    connect to, but that error surfaces naturally).  Policy beyond
    well-formedness — e.g. ``repro-serve`` refusing privileged ports —
    belongs to the caller.
    """
    if not isinstance(spec, str) or ":" not in spec:
        raise InvalidParameterError(
            f"address must look like HOST:PORT, got {spec!r}"
        )
    host, _, port_text = spec.rpartition(":")
    if not host:
        raise InvalidParameterError(
            f"address must name a host before the colon, got {spec!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise InvalidParameterError(
            f"port must be an integer, got {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise InvalidParameterError(
            f"port must be in [0, 65535], got {port}"
        )
    return host, port

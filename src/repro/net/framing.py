"""Wire format of the socket tier: handshake + length-prefixed frames.

A connection opens with a fixed 8-byte handshake in each direction —
4-byte magic plus a big-endian ``u32`` protocol version — so a peer
speaking the wrong protocol (an HTTP probe, a stale client) is rejected
before any pickle bytes are trusted.  After the handshake, every
message is one *frame*::

    [u32 length][pickle((seq, payload))]

``seq`` is a per-connection sequence number chosen by the requester and
echoed on the response, so responses match requests even if a future
server interleaves them.  ``payload`` reuses the
:mod:`repro.serve.protocol` dataclasses — the same values that cross
the dispatcher/worker pipes cross the network unchanged.

Security note: frames are **pickles**.  Unpickling attacker-controlled
bytes is arbitrary code execution, so this transport must only ever
face trusted networks (the same trust boundary as the fleet's pipes —
see the README's remote-serving section).  The handshake is a protocol
check, not authentication.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Optional, Tuple

from repro.net.errors import ConnectionLostError, FrameError, HandshakeError

#: First bytes on the wire in both directions; "Spectral LPM".
NET_MAGIC = b"SLPM"

#: Bumped on any incompatible change to the framing or the payload
#: contract; both sides refuse to talk across versions.
NET_PROTOCOL_VERSION = 1

#: Upper bound on one frame's body.  Real payloads (orders, artifacts,
#: query batches) are kilobytes to low megabytes; anything larger is a
#: corrupt or hostile length prefix, rejected before allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")
_HANDSHAKE = struct.Struct(">4sI")

#: Full size of one handshake message.
HANDSHAKE_BYTES = _HANDSHAKE.size


def handshake_bytes(version: Optional[int] = None) -> bytes:
    """The 8-byte hello this side sends (tests may spoof ``version``)."""
    if version is None:
        version = NET_PROTOCOL_VERSION
    return _HANDSHAKE.pack(NET_MAGIC, version)


def parse_handshake(data: bytes) -> int:
    """Validate a peer's hello; returns its protocol version."""
    if len(data) != HANDSHAKE_BYTES:
        raise HandshakeError(
            f"short handshake: expected {HANDSHAKE_BYTES} bytes, "
            f"got {len(data)}"
        )
    magic, version = _HANDSHAKE.unpack(data)
    if magic != NET_MAGIC:
        raise HandshakeError(
            f"peer does not speak the repro protocol "
            f"(magic {magic!r}, expected {NET_MAGIC!r})"
        )
    return version


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionLostError`.

    ``socket.timeout`` propagates unchanged — the caller decides
    whether a timeout tears the connection down (the client does).
    """
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionLostError(
                f"peer closed the connection "
                f"({n - remaining} of {n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)


def send_frame(sock: socket.socket, seq: int, payload: object) -> None:
    """Pickle ``(seq, payload)`` and send it as one frame.

    The caller serializes concurrent senders (per-connection send
    lock); interleaved ``sendall`` calls would corrupt the stream.
    """
    body = pickle.dumps((seq, payload), protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    sock.sendall(_HEADER.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> Tuple[int, object]:
    """Read one frame; returns ``(seq, payload)``.

    Raises :class:`ConnectionLostError` on EOF and :class:`FrameError`
    on a length prefix or envelope that cannot be trusted.
    """
    (length,) = _HEADER.unpack(recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    try:
        envelope = pickle.loads(recv_exact(sock, length))
    except ConnectionLostError:
        raise
    except Exception as exc:
        raise FrameError(f"frame body failed to unpickle: {exc}") from exc
    if (not isinstance(envelope, tuple) or len(envelope) != 2
            or not isinstance(envelope[0], int)):
        raise FrameError(
            f"frame is not a (seq, payload) envelope: "
            f"{type(envelope).__name__}"
        )
    return envelope

"""Curve abstractions.

Two levels of contract:

:class:`KeyedOrder`
    Assigns every cell of a domain a *sortable integer key*.  Keys must be
    distinct but need not be dense — the mapping layer densifies them into
    ranks.  This is enough to define a linear order (e.g. the diagonal
    order, whose dense index has awkward closed forms in high dimension).

:class:`SpaceFillingCurve`
    A keyed order that is additionally a *bijection* onto
    ``[0, size)`` with an inverse (``index_to_point``).  All the classic
    curves (Sweep, Snake, Z-order/Peano, Gray, Hilbert) satisfy this.

Bit-interleaved curves (Z-order, Gray, Hilbert) are defined on power-of-two
hyper-cubes; :func:`enclosing_bits` computes the embedding cube for an
arbitrary grid, and the mapping layer compacts the resulting sparse keys.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence, Tuple

from repro.errors import DimensionError, DomainError, InvalidParameterError


def enclosing_bits(side: int) -> int:
    """Bits per coordinate of the smallest power-of-two cube >= ``side``."""
    if side < 1:
        raise InvalidParameterError(f"side must be >= 1, got {side}")
    bits = 1
    while (1 << bits) < side:
        bits += 1
    return bits


class KeyedOrder(ABC):
    """Assigns distinct integer sort keys to the cells of a cube domain."""

    def __init__(self, ndim: int, bits: int):
        if ndim < 1:
            raise InvalidParameterError(f"ndim must be >= 1, got {ndim}")
        if bits < 1:
            raise InvalidParameterError(f"bits must be >= 1, got {bits}")
        self._ndim = ndim
        self._bits = bits

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self._ndim

    @property
    def bits(self) -> int:
        """Bits per coordinate; the domain side is ``2**bits``."""
        return self._bits

    @property
    def side(self) -> int:
        """Side length of the cube domain."""
        return 1 << self._bits

    @property
    def size(self) -> int:
        """Number of cells in the cube domain."""
        return 1 << (self._bits * self._ndim)

    @property
    def name(self) -> str:
        """Registry name; subclasses override."""
        return type(self).__name__

    # ------------------------------------------------------------------
    @abstractmethod
    def point_to_key(self, point: Sequence[int]) -> int:
        """Sort key of a cell (distinct per cell, not necessarily dense)."""

    def _check_point(self, point: Sequence[int]) -> Tuple[int, ...]:
        pt = tuple(int(c) for c in point)
        if len(pt) != self._ndim:
            raise DimensionError(
                f"point has {len(pt)} coordinates, curve has {self._ndim}"
            )
        side = self.side
        if any(not 0 <= c < side for c in pt):
            raise DomainError(
                f"point {pt} outside the curve domain [0, {side})^{self._ndim}"
            )
        return pt


class SpaceFillingCurve(KeyedOrder):
    """A bijection between the cube domain and ``[0, size)``."""

    @abstractmethod
    def point_to_index(self, point: Sequence[int]) -> int:
        """Dense curve index of a cell, in ``[0, size)``."""

    @abstractmethod
    def index_to_point(self, index: int) -> Tuple[int, ...]:
        """Cell at a given curve position (inverse of point_to_index)."""

    def point_to_key(self, point: Sequence[int]) -> int:
        return self.point_to_index(point)

    def _check_index(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self.size:
            raise DomainError(
                f"index {index} outside [0, {self.size})"
            )
        return index

    def points_in_order(self) -> Iterator[Tuple[int, ...]]:
        """All cells, visited in curve order."""
        for index in range(self.size):
            yield self.index_to_point(index)

    def step_sizes(self) -> Iterator[int]:
        """Manhattan distance between successive cells on the curve.

        A curve with all steps equal to 1 is *continuous* (Hilbert is;
        Z-order and Gray are not) — the property behind the boundary
        effect the paper analyzes.
        """
        previous = None
        for point in self.points_in_order():
            if previous is not None:
                yield sum(abs(a - b) for a, b in zip(point, previous))
            previous = point

"""The Z-order (Morton) curve — the paper's "Peano" baseline.

The multi-dimensional database literature of the paper's era (Orenstein,
Mokbel/Aref) calls the bit-interleaving curve the *Peano* curve; it is also
known as Morton order, Z-order, or N-order.  The curve index of a point is
obtained by interleaving the bits of its coordinates, most significant bits
first.

Bit packing convention (shared with the Gray and Hilbert code): the index
is read MSB-first as ``bits`` groups of ``ndim`` bits; within each group,
coordinate 0 contributes the most significant bit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.curves.base import SpaceFillingCurve


def interleave_bits(coords: Sequence[int], bits: int) -> int:
    """Pack coordinate bits into a Morton code, MSB-first."""
    code = 0
    for b in range(bits - 1, -1, -1):
        for c in coords:
            code = (code << 1) | ((int(c) >> b) & 1)
    return code


def deinterleave_bits(code: int, bits: int, ndim: int) -> List[int]:
    """Unpack a Morton code into its coordinates (inverse of interleave)."""
    coords = [0] * ndim
    position = bits * ndim - 1
    for b in range(bits - 1, -1, -1):
        for i in range(ndim):
            coords[i] |= ((code >> position) & 1) << b
            position -= 1
    return coords


class ZOrderCurve(SpaceFillingCurve):
    """Morton / Z-order curve on a ``(2**bits)^ndim`` cube."""

    @property
    def name(self) -> str:
        return "peano"

    def point_to_index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        return interleave_bits(pt, self._bits)

    def index_to_point(self, index: int) -> Tuple[int, ...]:
        index = self._check_index(index)
        return tuple(deinterleave_bits(index, self._bits, self._ndim))

"""Space-filling curves: the fractal baselines and non-fractal sweeps."""

from repro.curves.base import KeyedOrder, SpaceFillingCurve, enclosing_bits
from repro.curves.diagonal import DiagonalOrder
from repro.curves.gray import GrayCurve, gray_decode, gray_encode
from repro.curves.hilbert import (
    HilbertCurve,
    hilbert2d_index,
    hilbert2d_point,
)
from repro.curves.registry import (
    CURVE_NAMES,
    PAPER_BASELINES,
    make_curve,
)
from repro.curves.sweep import SnakeCurve, SweepCurve
from repro.curves.vectorized import (
    batch_encoder,
    gray_keys,
    hilbert_keys,
    morton_keys,
    snake_keys,
    sweep_keys,
)
from repro.curves.zorder import (
    ZOrderCurve,
    deinterleave_bits,
    interleave_bits,
)

__all__ = [
    "CURVE_NAMES",
    "DiagonalOrder",
    "GrayCurve",
    "HilbertCurve",
    "KeyedOrder",
    "PAPER_BASELINES",
    "SnakeCurve",
    "SpaceFillingCurve",
    "SweepCurve",
    "ZOrderCurve",
    "batch_encoder",
    "deinterleave_bits",
    "enclosing_bits",
    "gray_decode",
    "gray_encode",
    "gray_keys",
    "hilbert2d_index",
    "hilbert2d_point",
    "hilbert_keys",
    "interleave_bits",
    "make_curve",
    "morton_keys",
    "snake_keys",
    "sweep_keys",
]

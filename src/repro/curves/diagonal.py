"""Diagonal (anti-diagonal sweep) order.

An additional non-fractal baseline: cells are visited anti-diagonal by
anti-diagonal (increasing coordinate sum), lexicographically within a
diagonal — optionally alternating direction per diagonal (*zigzag*, the
JPEG coefficient order in 2-D).

The diagonal order is a :class:`~repro.curves.base.KeyedOrder` only: its
keys are distinct and monotone in visit order, but not dense, because the
number of cells per diagonal varies.  The mapping layer densifies keys, so
this distinction is invisible to metrics and experiments.
"""

from __future__ import annotations

from typing import Sequence

from repro.curves.base import KeyedOrder


class DiagonalOrder(KeyedOrder):
    """Anti-diagonal sweep on a cube domain.

    Cells are keyed by ``(coordinate sum, lexicographic rank)``; with
    ``zigzag=True`` the lexicographic direction alternates with diagonal
    parity.
    """

    def __init__(self, ndim: int, bits: int, zigzag: bool = False):
        super().__init__(ndim, bits)
        self._zigzag = bool(zigzag)

    @property
    def name(self) -> str:
        return "diagonal-zigzag" if self._zigzag else "diagonal"

    @property
    def zigzag(self) -> bool:
        return self._zigzag

    def point_to_key(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        diagonal = sum(pt)
        lex = 0
        for c in pt:
            lex = (lex << self._bits) | c
        if self._zigzag and diagonal & 1:
            lex = (1 << (self._bits * self._ndim)) - 1 - lex
        return (diagonal << (self._bits * self._ndim)) | lex

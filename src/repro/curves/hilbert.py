"""The Hilbert curve in arbitrary dimension.

Implementation of John Skilling's transpose-based algorithm ("Programming
the Hilbert curve", AIP Conf. Proc. 707, 2004), which converts between
coordinates and Hilbert index with O(bits * ndim) bit operations and no
lookup tables, in any dimension.

The *transpose* format views the Hilbert index as ``ndim`` words of
``bits`` bits each, with index bits distributed round-robin across words
(MSB first, coordinate 0 first) — exactly the Morton packing from
:mod:`repro.curves.zorder`, which we reuse.

A classic 2-D implementation (the quadrant-rotation formulation popularized
by Wikipedia's ``xy2d``) ships alongside as an independent oracle: both
must produce unit-step bijections, and the test suite checks they agree on
locality statistics even where their orientations differ.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.curves.base import SpaceFillingCurve
from repro.curves.zorder import deinterleave_bits, interleave_bits
from repro.errors import DomainError, InvalidParameterError


# ----------------------------------------------------------------------
# Skilling's transforms (in place on a list of coordinate words)
# ----------------------------------------------------------------------
def _axes_to_transpose(coords: List[int], bits: int) -> List[int]:
    """Convert spatial coordinates into Hilbert-transpose form."""
    x = list(coords)
    n = len(x)
    m = 1 << (bits - 1)
    # Inverse undo of the "excess work" (see Skilling 2004).
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t
    return x


def _transpose_to_axes(transpose: List[int], bits: int) -> List[int]:
    """Convert Hilbert-transpose form back into spatial coordinates."""
    x = list(transpose)
    n = len(x)
    m = 2 << (bits - 1)
    # Gray decode by H ^ (H/2).
    t = x[n - 1] >> 1
    for i in range(n - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work.
    q = 2
    while q != m:
        p = q - 1
        for i in range(n - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


class HilbertCurve(SpaceFillingCurve):
    """d-dimensional Hilbert curve on a ``(2**bits)^ndim`` cube.

    Every step along the curve moves to a cell at Manhattan distance
    exactly 1 — the continuity property fractal analyses (Moon et al. 2001)
    rely on and the property the test suite verifies.
    """

    @property
    def name(self) -> str:
        return "hilbert"

    def point_to_index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        transpose = _axes_to_transpose(list(pt), self._bits)
        return interleave_bits(transpose, self._bits)

    def index_to_point(self, index: int) -> Tuple[int, ...]:
        index = self._check_index(index)
        transpose = deinterleave_bits(index, self._bits, self._ndim)
        return tuple(_transpose_to_axes(transpose, self._bits))


# ----------------------------------------------------------------------
# Independent 2-D oracle
# ----------------------------------------------------------------------
def hilbert2d_index(side: int, x: int, y: int) -> int:
    """Hilbert index of ``(x, y)`` on a ``side x side`` grid.

    ``side`` must be a power of two.  Classic quadrant-rotation
    formulation; used in tests as an oracle independent of the Skilling
    transform.
    """
    _check_2d(side, x, y)
    index = 0
    s = side // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        index += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return index


def hilbert2d_point(side: int, index: int) -> Tuple[int, int]:
    """Inverse of :func:`hilbert2d_index`."""
    if side < 1 or side & (side - 1):
        raise InvalidParameterError(f"side must be a power of two, got {side}")
    if not 0 <= index < side * side:
        raise DomainError(f"index {index} outside [0, {side * side})")
    x = y = 0
    t = index
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # Rotate back.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def _check_2d(side: int, x: int, y: int) -> None:
    if side < 1 or side & (side - 1):
        raise InvalidParameterError(f"side must be a power of two, got {side}")
    if not (0 <= x < side and 0 <= y < side):
        raise DomainError(f"point ({x}, {y}) outside [0, {side})^2")

"""Vectorized batch key computation for the bit-interleaved curves.

The scalar curve classes are exact and simple but pay Python-loop costs
per cell; ordering a grid calls them ``n`` times.  These functions
compute keys for an ``(n, ndim)`` coordinate array in one numpy pass —
the Skilling Hilbert transform, Morton interleave, and Gray decode are
all elementwise integer ops, so they vectorize directly (data-dependent
branches become ``where`` masks).

Every function is property-tested against its scalar counterpart; the
mapping layer (:class:`repro.mapping.CurveMapping`) uses these
automatically when available for the curve.

Keys are int64, which bounds the supported domain to
``bits * ndim <= 62``; callers with larger domains (beyond 4 * 10^18
cells — no realistic grid) must use the scalar path.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import DimensionError, InvalidParameterError


def _validate(points: np.ndarray, bits: int) -> np.ndarray:
    pts = np.asarray(points)
    if pts.ndim != 2:
        raise DimensionError(
            f"points must be (n, ndim)-shaped, got {pts.shape}"
        )
    if bits < 1:
        raise InvalidParameterError(f"bits must be >= 1, got {bits}")
    if bits * pts.shape[1] > 62:
        raise InvalidParameterError(
            f"bits * ndim = {bits * pts.shape[1]} exceeds the int64 "
            "key budget (62)"
        )
    side = 1 << bits
    if pts.size and (pts.min() < 0 or pts.max() >= side):
        raise InvalidParameterError(
            f"coordinates outside [0, {side})"
        )
    return pts.astype(np.int64)


def morton_keys(points: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized Z-order (Peano) keys: MSB-first bit interleave."""
    pts = _validate(points, bits)
    n, ndim = pts.shape
    keys = np.zeros(n, dtype=np.int64)
    for b in range(bits - 1, -1, -1):
        for i in range(ndim):
            keys = (keys << 1) | ((pts[:, i] >> b) & 1)
    return keys


def gray_keys(points: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized Gray-curve keys: inverse Gray code of the Morton code.

    The inverse reflected-Gray transform is the bitwise prefix XOR,
    computed in log(word) shift-XOR steps.
    """
    codes = morton_keys(points, bits)
    shift = 1
    while shift < 64:
        codes = codes ^ (codes >> shift)
        shift <<= 1
    return codes


def sweep_keys(points: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized Sweep (row-major) keys on the cube domain."""
    pts = _validate(points, bits)
    keys = np.zeros(len(pts), dtype=np.int64)
    for i in range(pts.shape[1]):
        keys = (keys << bits) | pts[:, i]
    return keys


def snake_keys(points: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized Snake (boustrophedon) keys.

    Mirrors :class:`repro.curves.SnakeCurve`: an axis travels backwards
    when the sum of the more significant *coordinates* is odd.
    """
    pts = _validate(points, bits)
    side = 1 << bits
    keys = np.zeros(len(pts), dtype=np.int64)
    parity = np.zeros(len(pts), dtype=np.int64)
    for i in range(pts.shape[1]):
        coord = pts[:, i]
        digit = np.where(parity & 1, side - 1 - coord, coord)
        keys = keys * side + digit
        parity = parity + coord
    return keys


def hilbert_keys(points: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized Hilbert keys (Skilling transform over column arrays)."""
    pts = _validate(points, bits)
    ndim = pts.shape[1]
    x = [pts[:, i].copy() for i in range(ndim)]
    m = 1 << (bits - 1)
    # Inverse undo of the excess work.
    q = m
    while q > 1:
        p = q - 1
        for i in range(ndim):
            mask = (x[i] & q) != 0
            x[0] = np.where(mask, x[0] ^ p, x[0])
            t = np.where(mask, 0, (x[0] ^ x[i]) & p)
            x[0] ^= t
            x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, ndim):
        x[i] ^= x[i - 1]
    t = np.zeros(len(pts), dtype=np.int64)
    q = m
    while q > 1:
        t = np.where((x[ndim - 1] & q) != 0, t ^ (q - 1), t)
        q >>= 1
    for i in range(ndim):
        x[i] ^= t
    # Interleave the transpose.
    keys = np.zeros(len(pts), dtype=np.int64)
    for b in range(bits - 1, -1, -1):
        for i in range(ndim):
            keys = (keys << 1) | ((x[i] >> b) & 1)
    return keys


BatchKeyFn = Callable[[np.ndarray, int], np.ndarray]

#: Curve names with a vectorized batch encoder.
_BATCH_ENCODERS: Dict[str, BatchKeyFn] = {
    "peano": morton_keys,
    "zorder": morton_keys,
    "morton": morton_keys,
    "gray": gray_keys,
    "sweep": sweep_keys,
    "snake": snake_keys,
    "hilbert": hilbert_keys,
}


def batch_encoder(curve_name: str) -> Optional[BatchKeyFn]:
    """The vectorized encoder for a curve name, or ``None``."""
    return _BATCH_ENCODERS.get(curve_name.lower())

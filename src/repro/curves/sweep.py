"""Sweep (row-major) and Snake (boustrophedon) orders.

The paper's non-fractal baseline is the *Sweep* mapping: plain row-major
order.  Sweep is trivially computable for any grid shape and is extremely
asymmetric — along the fastest-varying axis neighbours are adjacent in the
order, along the slowest axis they are a full stride apart.  Figure 5b
builds its fairness argument on exactly this asymmetry (Sweep-X vs
Sweep-Y).

Snake is the boustrophedon refinement (reverse every other row) included
as an extra non-fractal baseline: it is continuous (unit steps) yet still
unfair across axes.

Both orders are defined on arbitrary box shapes, not just power-of-two
cubes; for uniformity with the bit curves they are instantiated on cube
domains here and evaluated on sub-grids by the mapping layer.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.curves.base import SpaceFillingCurve
from repro.errors import InvalidParameterError


class SweepCurve(SpaceFillingCurve):
    """Row-major order; ``axis_order`` selects which axis varies slowest.

    ``axis_order`` is a permutation of ``range(ndim)`` listing axes from
    slowest- to fastest-varying.  The default ``(0, 1, ..., d-1)`` matches
    the row-major flat index of :class:`repro.geometry.Grid`.
    """

    def __init__(self, ndim: int, bits: int,
                 axis_order: Sequence[int] | None = None):
        super().__init__(ndim, bits)
        if axis_order is None:
            axis_order = tuple(range(ndim))
        else:
            axis_order = tuple(int(a) for a in axis_order)
            if sorted(axis_order) != list(range(ndim)):
                raise InvalidParameterError(
                    f"axis_order must be a permutation of range({ndim}), "
                    f"got {axis_order}"
                )
        self._axis_order = axis_order

    @property
    def name(self) -> str:
        return "sweep"

    @property
    def axis_order(self) -> Tuple[int, ...]:
        return self._axis_order

    def point_to_index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        index = 0
        for axis in self._axis_order:
            index = (index << self._bits) | pt[axis]
        return index

    def index_to_point(self, index: int) -> Tuple[int, ...]:
        index = self._check_index(index)
        mask = self.side - 1
        coords = [0] * self._ndim
        for axis in reversed(self._axis_order):
            coords[axis] = index & mask
            index >>= self._bits
        return tuple(coords)


class SnakeCurve(SpaceFillingCurve):
    """Boustrophedon order: row-major with alternate rows reversed.

    The direction of travel along each axis flips whenever the sum of the
    *digits already fixed* (more significant axes' coordinates) changes
    parity, which makes every step a unit step.
    """

    def __init__(self, ndim: int, bits: int,
                 axis_order: Sequence[int] | None = None):
        super().__init__(ndim, bits)
        if axis_order is None:
            axis_order = tuple(range(ndim))
        else:
            axis_order = tuple(int(a) for a in axis_order)
            if sorted(axis_order) != list(range(ndim)):
                raise InvalidParameterError(
                    f"axis_order must be a permutation of range({ndim}), "
                    f"got {axis_order}"
                )
        self._axis_order = axis_order

    @property
    def name(self) -> str:
        return "snake"

    def point_to_index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        side = self.side
        index = 0
        parity = 0
        for axis in self._axis_order:
            coord = pt[axis]
            digit = side - 1 - coord if parity & 1 else coord
            index = index * side + digit
            # An axis travels backwards exactly when the sum of the more
            # significant *coordinates* is odd; accumulating coordinate
            # (not digit) parity is what keeps every step a unit step
            # across multi-digit rollovers.
            parity += coord
        return index

    def index_to_point(self, index: int) -> Tuple[int, ...]:
        index = self._check_index(index)
        side = self.side
        # Extract digits slowest-axis first.
        digits = []
        remaining = index
        for _ in range(self._ndim):
            digits.append(remaining % side)
            remaining //= side
        digits.reverse()
        coords = [0] * self._ndim
        parity = 0
        for axis, digit in zip(self._axis_order, digits):
            coord = side - 1 - digit if parity & 1 else digit
            coords[axis] = coord
            parity += coord
        return tuple(coords)

"""The Gray-code curve.

Faloutsos' variant of bit interleaving: positions along the curve are
ordered so that *consecutive Morton codes differ in exactly one bit* — the
interleaved coordinates are read as a reflected binary Gray code.  The
point at curve position ``i`` is the one whose Morton code is
``gray(i) = i ^ (i >> 1)``.

Like Z-order, the Gray curve is a fractal in the paper's sense (it recurses
quadrant by quadrant) and suffers the same boundary effect.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.curves.base import SpaceFillingCurve
from repro.curves.zorder import deinterleave_bits, interleave_bits


def gray_encode(value: int) -> int:
    """The reflected binary Gray code of ``value``."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_encode`."""
    if code < 0:
        raise ValueError(f"code must be non-negative, got {code}")
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


class GrayCurve(SpaceFillingCurve):
    """Gray-code curve on a ``(2**bits)^ndim`` cube."""

    @property
    def name(self) -> str:
        return "gray"

    def point_to_index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        morton = interleave_bits(pt, self._bits)
        return gray_decode(morton)

    def index_to_point(self, index: int) -> Tuple[int, ...]:
        index = self._check_index(index)
        morton = gray_encode(index)
        return tuple(deinterleave_bits(morton, self._bits, self._ndim))

"""Name registry for curve orders.

Central construction point so experiments, benchmarks, and the CLI can
refer to curves by the paper's names.  ``"peano"`` is the Z-order/Morton
curve (the spatial-database literature's name for it, used by the paper);
``"zorder"`` and ``"morton"`` are aliases.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.curves.base import KeyedOrder
from repro.curves.diagonal import DiagonalOrder
from repro.curves.gray import GrayCurve
from repro.curves.hilbert import HilbertCurve
from repro.curves.sweep import SnakeCurve, SweepCurve
from repro.curves.zorder import ZOrderCurve
from repro.errors import InvalidParameterError

CurveFactory = Callable[[int, int], KeyedOrder]

_FACTORIES: Dict[str, CurveFactory] = {
    "sweep": SweepCurve,
    "snake": SnakeCurve,
    "peano": ZOrderCurve,
    "zorder": ZOrderCurve,
    "morton": ZOrderCurve,
    "gray": GrayCurve,
    "hilbert": HilbertCurve,
    "diagonal": DiagonalOrder,
    "diagonal-zigzag": lambda ndim, bits: DiagonalOrder(ndim, bits,
                                                        zigzag=True),
}

#: Canonical curve names (aliases excluded).
CURVE_NAMES = ("sweep", "snake", "peano", "gray", "hilbert",
               "diagonal", "diagonal-zigzag")

#: The four linear orders the paper's Section 5 compares against Spectral.
PAPER_BASELINES = ("sweep", "peano", "gray", "hilbert")


def make_curve(name: str, ndim: int, bits: int) -> KeyedOrder:
    """Instantiate the named curve on a ``(2**bits)^ndim`` cube."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown curve {name!r}; expected one of {CURVE_NAMES}"
        ) from None
    return factory(ndim, bits)

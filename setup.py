"""Setup shim.

All metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` works in offline environments whose setuptools
predates PEP 660 editable wheels (pip then falls back to the legacy
``setup.py develop`` code path, which needs this shim).
"""

from setuptools import setup

setup()
